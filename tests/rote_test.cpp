// Tests for the ROTE-style distributed monotonic counters (§V-E) and
// their integration as SeGShare's whole-file-system rollback guard.
#include <gtest/gtest.h>

#include "common/error.h"
#include "rote/rote.h"
#include "segshare_test_util.h"

namespace seg::rote {
namespace {

/// A provisioned quorum of `n` replicas, each on its own platform.
struct Quorum {
  explicit Quorum(std::size_t n, std::uint64_t seed = 0x20e7)
      : rng(seed), service_key(rng.bytes(32)) {
    for (std::size_t i = 0; i < n; ++i) {
      platforms.push_back(std::make_unique<sgx::SgxPlatform>(rng));
      replicas.push_back(
          std::make_unique<CounterReplica>(*platforms.back(), rng));
      const Bytes request = replicas.back()->provisioning_request();
      const Bytes response = provision_replica(
          request, platforms.back()->attestation_public_key(), service_key,
          rng);
      replicas.back()->install_service_key(response);
    }
  }

  std::vector<CounterReplica*> ptrs() {
    std::vector<CounterReplica*> out;
    for (auto& r : replicas) out.push_back(r.get());
    return out;
  }

  TestRng rng;
  Bytes service_key;
  std::vector<std::unique_ptr<sgx::SgxPlatform>> platforms;
  std::vector<std::unique_ptr<CounterReplica>> replicas;
};

TEST(Rote, ProvisioningAttestsReplicas) {
  Quorum q(1);
  EXPECT_TRUE(q.replicas[0]->provisioned());
}

TEST(Rote, ProvisioningRejectsForeignEnclave) {
  TestRng rng(1);
  sgx::SgxPlatform platform(rng);
  // A non-replica enclave (different image) asks for the service key.
  class Impostor : public sgx::Enclave {
   public:
    Impostor(sgx::SgxPlatform& p) : sgx::Enclave(p, to_bytes("evil")) {}
    using sgx::Enclave::generate_quote;
  } impostor(platform);
  const auto eph = crypto::x25519_generate(rng);
  Bytes request = to_bytes("rote-prov-req:");
  append(request, eph.public_key);
  const auto quote = impostor.generate_quote(eph.public_key);
  Bytes qb;
  append(qb, quote.measurement);
  put_u32_be(qb, static_cast<std::uint32_t>(quote.report_data.size()));
  append(qb, quote.report_data);
  append(qb, quote.signature);
  append(request, qb);
  EXPECT_THROW(provision_replica(request, platform.attestation_public_key(),
                                 Bytes(32, 1), rng),
               AuthError);
}

TEST(Rote, ProvisioningRejectsWrongPlatformKey) {
  TestRng rng(2);
  sgx::SgxPlatform real(rng), other(rng);
  CounterReplica replica(real, rng);
  const Bytes request = replica.provisioning_request();
  EXPECT_THROW(provision_replica(request, other.attestation_public_key(),
                                 Bytes(32, 1), rng),
               AuthError);
}

TEST(Rote, IncrementAndReadThroughQuorum) {
  Quorum q(3);
  DistributedCounter counter(q.ptrs(), q.service_key);
  const CounterId id = counter.create();
  EXPECT_EQ(counter.read(id), 0u);
  EXPECT_EQ(counter.increment(id), 1u);
  EXPECT_EQ(counter.increment(id), 2u);
  EXPECT_EQ(counter.read(id), 2u);
}

TEST(Rote, IndependentCounters) {
  Quorum q(3);
  DistributedCounter counter(q.ptrs(), q.service_key);
  const CounterId a = counter.create();
  const CounterId b = counter.create();
  counter.increment(a);
  counter.increment(a);
  counter.increment(b);
  EXPECT_EQ(counter.read(a), 2u);
  EXPECT_EQ(counter.read(b), 1u);
}

TEST(Rote, SurvivesMinorityWipe) {
  // Adversary resets one of three replicas (platform restart): the
  // counter value survives, and the wiped replica catches up on the next
  // increment.
  Quorum q(3);
  DistributedCounter counter(q.ptrs(), q.service_key);
  const CounterId id = counter.create();
  for (int i = 0; i < 5; ++i) counter.increment(id);
  q.replicas[1]->wipe();
  EXPECT_EQ(counter.read(id), 5u);
  EXPECT_EQ(counter.increment(id), 6u);
  // The wiped replica now stores the fresh value again.
  EXPECT_EQ(q.replicas[1]->handle_read(id).value, 6u);
}

TEST(Rote, MajorityWipeFailsClosed) {
  // If a majority loses state the stable value cannot be attested any
  // more; the quorum read reflects the rollback... and that is exactly
  // what the guard detects (stored root counter > quorum value).
  Quorum q(3);
  DistributedCounter counter(q.ptrs(), q.service_key);
  const CounterId id = counter.create();
  for (int i = 0; i < 5; ++i) counter.increment(id);
  q.replicas[0]->wipe();
  q.replicas[1]->wipe();
  EXPECT_LT(counter.read(id), 5u);
}

TEST(Rote, ForgedAcksIgnored) {
  // Replicas that were never provisioned with the service key (e.g. an
  // attacker inserting fake replicas) cannot contribute valid acks.
  Quorum good(2);
  TestRng rng(3);
  sgx::SgxPlatform rogue_platform(rng);
  CounterReplica rogue(rogue_platform, rng);  // provisioned with...
  const Bytes request = rogue.provisioning_request();
  rogue.install_service_key(provision_replica(
      request, rogue_platform.attestation_public_key(), Bytes(32, 0xee),
      rng));  // ...a DIFFERENT key

  auto replicas = good.ptrs();
  replicas.push_back(&rogue);
  DistributedCounter counter(replicas, good.service_key);  // quorum = 2
  const CounterId id = counter.create();
  // Both good replicas ack; the rogue's MACs never verify but the quorum
  // is still reachable.
  EXPECT_EQ(counter.increment(id), 1u);
  // With one good replica gone, the rogue cannot stand in.
  good.replicas[0]->wipe();
  good.replicas[0]->destroy();
  EXPECT_THROW(counter.increment(id), RollbackError);
}

TEST(Rote, UnprovisionedReplicaRefusesService) {
  TestRng rng(4);
  sgx::SgxPlatform platform(rng);
  CounterReplica replica(platform, rng);
  EXPECT_THROW(replica.handle_read(1), ProtocolError);
  EXPECT_THROW(replica.handle_increment(1, 1), ProtocolError);
}

// ------------------------------------------------- SeGShare integration ---

TEST(RoteIntegration, WholeFsGuardOnDistributedCounters) {
  // Full SeGShare deployment whose §V-E guard runs on a 3-replica ROTE
  // quorum instead of local SGX counters.
  Quorum q(3);
  DistributedCounter distributed(q.ptrs(), q.service_key);
  RoteCounters counters(distributed);

  TestRng rng(0x40e7);
  tls::CertificateAuthority ca(rng);
  sgx::SgxPlatform platform(rng);
  store::AdversaryStore content(std::make_unique<store::MemoryStore>());
  store::MemoryStore group, dedup;

  core::EnclaveConfig config;
  config.hide_names = false;
  config.rollback_protection = true;
  config.fs_guard = core::FsRollbackGuard::kMonotonicCounter;

  core::SegShareEnclave enclave(platform, rng, ca.public_key(),
                                core::Stores{content, group, dedup}, config,
                                /*auto_bootstrap=*/true, &counters);
  core::SegShareServer::provision_certificate(enclave, ca, platform);
  core::SegShareServer server(enclave);
  net::DuplexChannel wire;
  client::UserClient alice(rng, ca.public_key(),
                           client::enroll_user(rng, ca, "alice"));
  server.accept(wire);
  alice.connect(wire.a(), [&] { server.pump(); });

  ASSERT_TRUE(alice.put_file("/f", to_bytes("v1")).ok());
  content.snapshot_all();
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v2")).ok());
  content.rollback_all();
  // Whole-FS rollback detected via the distributed counter.
  EXPECT_EQ(alice.get_file("/f").first.status, proto::Status::kError);
  // A minority replica wipe does not produce false positives.
  q.replicas[2]->wipe();
  ASSERT_TRUE(alice.put_file("/g", to_bytes("fresh")).ok());
  EXPECT_TRUE(alice.get_file("/g").first.ok());
  // No local SGX counter was used at all.
  EXPECT_EQ(platform.stats().counter_increments, 0u);
}

}  // namespace
}  // namespace seg::rote
