// End-to-end tests of the SeGShare system: Algo 1 request semantics,
// the Table I access-control model, and the F/P/S objectives that are
// observable through the public API.
#include <gtest/gtest.h>

#include "common/error.h"
#include "fs/records.h"
#include "segshare_test_util.h"

namespace seg {
namespace {

using testutil::Rig;

TEST(Setup, CertificateProvisioningAttestsEnclave) {
  Rig rig;
  EXPECT_TRUE(rig.enclave().ready());
  EXPECT_TRUE(rig.enclave().server_certificate().is_server);
  EXPECT_TRUE(rig.enclave().server_certificate().verify(rig.ca().public_key()));
}

TEST(Setup, ForeignCaCannotProvision) {
  // An enclave is measured with its hard-coded CA key; a different CA's
  // expected measurement will not match.
  TestRng rng(7);
  tls::CertificateAuthority good_ca(rng), evil_ca(rng, "Evil-CA");
  sgx::SgxPlatform platform(rng);
  store::MemoryStore content, group, dedup;
  core::SegShareEnclave enclave(platform, rng, good_ca.public_key(),
                                core::Stores{content, group, dedup});
  EXPECT_THROW(core::SegShareServer::provision_certificate(enclave, evil_ca,
                                                           platform),
               AuthError);
}

TEST(Setup, ClientVerifiesServerCertificate) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_TRUE(alice.connected());
  EXPECT_EQ(alice.server_certificate().subject, "segshare-server");
}

TEST(Setup, ClientWithForeignCertificateRejected) {
  Rig rig;
  TestRng rng(9);
  tls::CertificateAuthority other_ca(rng, "Other-CA");
  auto channel = std::make_unique<net::DuplexChannel>();
  client::UserClient mallory(rig.rng(), rig.ca().public_key(),
                             client::enroll_user(rng, other_ca, "mallory"));
  rig.server().accept(*channel);
  EXPECT_THROW(
      mallory.connect(channel->a(), [&] { rig.server().pump(); }),
      AuthError);
}

// ------------------------------------------------------- file operations ---

TEST(Files, PutGetRoundtrip) {
  Rig rig;
  auto& alice = rig.connect("alice");
  const Bytes content = rig.rng().bytes(100'000);
  EXPECT_TRUE(alice.put_file("/data.bin", content).ok());
  const auto [resp, fetched] = alice.get_file("/data.bin");
  EXPECT_TRUE(resp.ok());
  EXPECT_EQ(fetched, content);
}

TEST(Files, EmptyAndLargeFiles) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_TRUE(alice.put_file("/empty", {}).ok());
  EXPECT_TRUE(alice.get_file("/empty").second.empty());
  const Bytes big = rig.rng().bytes(3 * 1024 * 1024);
  EXPECT_TRUE(alice.put_file("/big", big).ok());
  EXPECT_EQ(alice.get_file("/big").second, big);
}

TEST(Files, GetMissingFileIsNotFound) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_EQ(alice.get_file("/ghost").first.status, proto::Status::kNotFound);
}

TEST(Files, UpdateByOwner) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.put_file("/f", to_bytes("version two")).ok());
  EXPECT_EQ(alice.get_file("/f").second, to_bytes("version two"));
}

TEST(Files, InvalidPathsRejected) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_EQ(alice.put_file("relative", to_bytes("x")).status,
            proto::Status::kBadRequest);
  EXPECT_EQ(alice.put_file("/a/../b", to_bytes("x")).status,
            proto::Status::kBadRequest);
  EXPECT_EQ(alice.put_file("/dir/", to_bytes("x")).status,
            proto::Status::kBadRequest);
}

TEST(Files, PutIntoMissingParentIsNotFound) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_EQ(alice.put_file("/no/such/dir/f", to_bytes("x")).status,
            proto::Status::kNotFound);
}

TEST(Files, PlaintextNeverTouchesUntrustedStores) {
  Rig rig;
  auto& alice = rig.connect("alice");
  const Bytes secret = to_bytes("MAGIC-SECRET-MARKER-31337");
  ASSERT_TRUE(alice.put_file("/s.txt", secret).ok());
  for (auto* store :
       {&rig.content_store(), &rig.group_store(), &rig.dedup_store()}) {
    for (const auto& name : store->list()) {
      const auto blob = *store->get(name);
      EXPECT_EQ(std::search(blob.begin(), blob.end(), secret.begin(),
                            secret.end()),
                blob.end())
          << "plaintext found in blob " << name;
    }
  }
}

TEST(Files, HiddenNamesLeakNoPaths) {
  Rig rig;  // hide_names defaults to true
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/secret-project/").ok());
  ASSERT_TRUE(alice.put_file("/secret-project/plan.txt", to_bytes("x")).ok());
  for (const auto& name : rig.content_store().list()) {
    EXPECT_EQ(name.find("secret-project"), std::string::npos);
    EXPECT_EQ(name.find("plan.txt"), std::string::npos);
  }
}

// ------------------------------------------------------------ directories ---

TEST(Directories, MkdirListRemove) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/docs/").ok());
  ASSERT_TRUE(alice.put_file("/docs/a.txt", to_bytes("a")).ok());
  ASSERT_TRUE(alice.put_file("/docs/b.txt", to_bytes("b")).ok());
  const auto listing = alice.list("/docs/");
  ASSERT_TRUE(listing.ok());
  EXPECT_EQ(listing.listing,
            (std::vector<std::string>{"/docs/a.txt", "/docs/b.txt"}));

  ASSERT_TRUE(alice.remove("/docs/a.txt").ok());
  EXPECT_EQ(alice.list("/docs/").listing,
            (std::vector<std::string>{"/docs/b.txt"}));
}

TEST(Directories, NestedTree) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/a/").ok());
  ASSERT_TRUE(alice.mkdir("/a/b/").ok());
  ASSERT_TRUE(alice.mkdir("/a/b/c/").ok());
  ASSERT_TRUE(alice.put_file("/a/b/c/deep.txt", to_bytes("deep")).ok());
  EXPECT_EQ(alice.get_file("/a/b/c/deep.txt").second, to_bytes("deep"));
  const auto root = alice.list("/");
  EXPECT_NE(std::find(root.listing.begin(), root.listing.end(), "/a/"),
            root.listing.end());
}

TEST(Directories, MkdirConflictAndMissingParent) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/d/").ok());
  EXPECT_EQ(alice.mkdir("/d/").status, proto::Status::kConflict);
  EXPECT_EQ(alice.mkdir("/x/y/").status, proto::Status::kNotFound);
}

TEST(Directories, RecursiveRemove) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/tree/").ok());
  ASSERT_TRUE(alice.mkdir("/tree/sub/").ok());
  ASSERT_TRUE(alice.put_file("/tree/sub/f", to_bytes("f")).ok());
  ASSERT_TRUE(alice.remove("/tree/").ok());
  EXPECT_EQ(alice.list("/tree/").status, proto::Status::kNotFound);
  EXPECT_EQ(alice.get_file("/tree/sub/f").first.status,
            proto::Status::kNotFound);
}

TEST(Directories, MoveFileAndDirectory) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/src/").ok());
  ASSERT_TRUE(alice.mkdir("/dst/").ok());
  ASSERT_TRUE(alice.put_file("/src/f", to_bytes("payload")).ok());
  ASSERT_TRUE(alice.move("/src/f", "/dst/f2").ok());
  EXPECT_EQ(alice.get_file("/src/f").first.status, proto::Status::kNotFound);
  EXPECT_EQ(alice.get_file("/dst/f2").second, to_bytes("payload"));

  ASSERT_TRUE(alice.mkdir("/src/inner/").ok());
  ASSERT_TRUE(alice.put_file("/src/inner/g", to_bytes("g")).ok());
  ASSERT_TRUE(alice.move("/src/", "/dst/moved/").ok());
  EXPECT_EQ(alice.get_file("/dst/moved/inner/g").second, to_bytes("g"));
  EXPECT_EQ(alice.list("/src/").status, proto::Status::kNotFound);
}

TEST(Directories, MoveIntoOwnSubtreeRejected) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/a/").ok());
  ASSERT_TRUE(alice.mkdir("/a/b/").ok());
  EXPECT_EQ(alice.move("/a/", "/a/b/c/").status, proto::Status::kBadRequest);
}

// --------------------------------------------------------- access control ---

TEST(AccessControl, UnsharedFileIsPrivate) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/private", to_bytes("alice only")).ok());
  EXPECT_EQ(bob.get_file("/private").first.status, proto::Status::kForbidden);
  EXPECT_EQ(bob.put_file("/private", to_bytes("overwrite")).status,
            proto::Status::kForbidden);
  EXPECT_EQ(bob.remove("/private").status, proto::Status::kForbidden);
}

TEST(AccessControl, ShareWithIndividualUserViaDefaultGroup) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/shared", to_bytes("hello bob")).ok());
  ASSERT_TRUE(alice.set_permission("/shared", "user:bob", fs::kPermRead).ok());
  EXPECT_EQ(bob.get_file("/shared").second, to_bytes("hello bob"));
  // Read-only: writes stay forbidden.
  EXPECT_EQ(bob.put_file("/shared", to_bytes("x")).status,
            proto::Status::kForbidden);
}

TEST(AccessControl, ShareWithUserWhoNeverConnected) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("early")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:carol", fs::kPermRead).ok());
  auto& carol = rig.connect("carol");
  EXPECT_EQ(carol.get_file("/f").second, to_bytes("early"));
}

TEST(AccessControl, GroupSharing) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  auto& carol = rig.connect("carol");
  // Alice creates "team" by adding bob (Algo 1 add_u creates the group).
  ASSERT_TRUE(alice.add_user_to_group("bob", "team").ok());
  ASSERT_TRUE(alice.put_file("/teamfile", to_bytes("team data")).ok());
  ASSERT_TRUE(
      alice.set_permission("/teamfile", "team", fs::kPermReadWrite).ok());
  EXPECT_EQ(bob.get_file("/teamfile").second, to_bytes("team data"));
  EXPECT_TRUE(bob.put_file("/teamfile", to_bytes("bob was here")).ok());
  // Carol is not in the group.
  EXPECT_EQ(carol.get_file("/teamfile").first.status,
            proto::Status::kForbidden);
}

TEST(AccessControl, ImmediateMembershipRevocation) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.add_user_to_group("bob", "proj").ok());
  ASSERT_TRUE(alice.put_file("/p", to_bytes("proj data")).ok());
  ASSERT_TRUE(alice.set_permission("/p", "proj", fs::kPermRead).ok());
  EXPECT_TRUE(bob.get_file("/p").first.ok());

  // S4: revocation is enforced on the very next request.
  ASSERT_TRUE(alice.remove_user_from_group("bob", "proj").ok());
  EXPECT_EQ(bob.get_file("/p").first.status, proto::Status::kForbidden);
}

TEST(AccessControl, ImmediatePermissionRevocation) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("data")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermRead).ok());
  EXPECT_TRUE(bob.get_file("/f").first.ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermNone).ok());
  EXPECT_EQ(bob.get_file("/f").first.status, proto::Status::kForbidden);
}

TEST(AccessControl, RevocationDoesNotReencryptContent) {
  // P3: the encrypted content file is byte-identical before and after a
  // permission revocation.
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("stable bytes")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermRead).ok());
  const auto before = rig.content_store().inner().list();
  std::map<std::string, Bytes> snapshot;
  for (const auto& name : before) snapshot[name] = *rig.content_store().get(name);

  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermDeny).ok());

  // Everything except the (one) ACL object must be untouched.
  std::size_t changed = 0;
  for (const auto& [name, blob] : snapshot) {
    const auto now = rig.content_store().get(name);
    if (!now || *now != blob) ++changed;
  }
  // The ACL lives in its own Protected-FS file: metadata + 1 chunk.
  EXPECT_LE(changed, 2u);
  EXPECT_GE(changed, 1u);
}

TEST(AccessControl, DenyOverridesInheritedGrant) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.mkdir("/proj/").ok());
  ASSERT_TRUE(alice.set_permission("/proj/", "user:bob", fs::kPermRead).ok());
  ASSERT_TRUE(alice.put_file("/proj/open", to_bytes("open")).ok());
  ASSERT_TRUE(alice.put_file("/proj/closed", to_bytes("closed")).ok());
  ASSERT_TRUE(alice.set_inherit("/proj/open", true).ok());
  ASSERT_TRUE(alice.set_inherit("/proj/closed", true).ok());
  ASSERT_TRUE(
      alice.set_permission("/proj/closed", "user:bob", fs::kPermDeny).ok());

  EXPECT_EQ(bob.get_file("/proj/open").second, to_bytes("open"));
  EXPECT_EQ(bob.get_file("/proj/closed").first.status,
            proto::Status::kForbidden);
}

TEST(AccessControl, InheritanceRequiresFlag) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.mkdir("/proj/").ok());
  ASSERT_TRUE(alice.set_permission("/proj/", "user:bob", fs::kPermRead).ok());
  ASSERT_TRUE(alice.put_file("/proj/f", to_bytes("f")).ok());
  // No inherit flag: the directory grant does not apply to the file.
  EXPECT_EQ(bob.get_file("/proj/f").first.status, proto::Status::kForbidden);
  ASSERT_TRUE(alice.set_inherit("/proj/f", true).ok());
  EXPECT_TRUE(bob.get_file("/proj/f").first.ok());
}

TEST(AccessControl, OnlyOwnersSetPermissions) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermReadWrite).ok());
  // Bob can read and write but is no owner: permission changes denied (F3).
  EXPECT_EQ(bob.set_permission("/f", "user:bob", fs::kPermRead).status,
            proto::Status::kForbidden);
  EXPECT_EQ(bob.set_inherit("/f", true).status, proto::Status::kForbidden);
}

TEST(AccessControl, MultipleFileOwners) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  ASSERT_TRUE(alice.add_file_owner("/f", "user:bob").ok());
  // F7: bob can now manage permissions too.
  EXPECT_TRUE(bob.set_permission("/f", "user:carol", fs::kPermRead).ok());
}

TEST(AccessControl, GroupOwnershipManagement) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  auto& carol = rig.connect("carol");
  ASSERT_TRUE(alice.add_user_to_group("bob", "g").ok());
  // Bob is a member but not an owner: cannot add members.
  EXPECT_EQ(bob.add_user_to_group("carol", "g").status,
            proto::Status::kForbidden);
  // Alice extends group ownership to bob's default group (rGO).
  ASSERT_TRUE(alice.add_group_owner("g", "user:bob").ok());
  EXPECT_TRUE(bob.add_user_to_group("carol", "g").ok());
  // And revokes it again.
  ASSERT_TRUE(alice.remove_group_owner("g", "user:bob").ok());
  EXPECT_EQ(bob.remove_user_from_group("carol", "g").status,
            proto::Status::kForbidden);
  (void)carol;
}

TEST(AccessControl, DeleteGroupRemovesAllMemberships) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.add_user_to_group("bob", "g").ok());
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "g", fs::kPermRead).ok());
  EXPECT_TRUE(bob.get_file("/f").first.ok());
  ASSERT_TRUE(alice.delete_group("g").ok());
  EXPECT_EQ(bob.get_file("/f").first.status, proto::Status::kForbidden);
}

TEST(AccessControl, DefaultGroupsAreProtected) {
  Rig rig;
  auto& alice = rig.connect("alice");
  EXPECT_EQ(alice.add_user_to_group("alice", "user:bob").status,
            proto::Status::kBadRequest);
  EXPECT_EQ(alice.delete_group("user:alice").status,
            proto::Status::kBadRequest);
  EXPECT_EQ(alice.remove_user_from_group("bob", "user:bob").status,
            proto::Status::kBadRequest);
}

TEST(AccessControl, UnionOfPermissionsAcrossGroups) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.add_user_to_group("bob", "readers").ok());
  ASSERT_TRUE(alice.add_user_to_group("bob", "writers").ok());
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "readers", fs::kPermRead).ok());
  ASSERT_TRUE(alice.set_permission("/f", "writers", fs::kPermWrite).ok());
  // Bob gets the union: read via readers, write via writers.
  EXPECT_TRUE(bob.get_file("/f").first.ok());
  EXPECT_TRUE(bob.put_file("/f", to_bytes("y")).ok());
}

TEST(AccessControl, SeparateReadAndWrite) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/wo", to_bytes("x")).ok());
  ASSERT_TRUE(alice.set_permission("/wo", "user:bob", fs::kPermWrite).ok());
  // F4: write-only — bob can update but not read.
  EXPECT_TRUE(bob.put_file("/wo", to_bytes("dropped off")).ok());
  EXPECT_EQ(bob.get_file("/wo").first.status, proto::Status::kForbidden);
}

TEST(AccessControl, Stat) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", Bytes(1234, 1)).ok());
  const auto stat = alice.stat("/f");
  EXPECT_TRUE(stat.ok());
  EXPECT_EQ(stat.body_size, 1234u);
  EXPECT_EQ(stat.message, "file");
  EXPECT_EQ(bob.stat("/f").status, proto::Status::kForbidden);
  EXPECT_EQ(alice.stat("/nope").status, proto::Status::kNotFound);
}

// --------------------------------------------------------------- restart ---

TEST(Persistence, EnclaveRestartKeepsData) {
  // F-objective behind sealing: the enclave is stateless; a new instance
  // with the same measurement unseals SK_r and continues.
  TestRng rng(0xabc);
  tls::CertificateAuthority ca(rng);
  sgx::SgxPlatform platform(rng);
  store::MemoryStore content, group, dedup;
  core::Stores stores{content, group, dedup};

  {
    core::SegShareEnclave enclave(platform, rng, ca.public_key(), stores);
    core::SegShareServer::provision_certificate(enclave, ca, platform);
    core::SegShareServer server(enclave);
    net::DuplexChannel channel;
    client::UserClient alice(rng, ca.public_key(),
                             client::enroll_user(rng, ca, "alice"));
    server.accept(channel);
    alice.connect(channel.a(), [&] { server.pump(); });
    ASSERT_TRUE(alice.put_file("/persisted", to_bytes("still here")).ok());
    enclave.destroy();
  }

  core::SegShareEnclave enclave2(platform, rng, ca.public_key(), stores);
  core::SegShareServer server2(enclave2);
  net::DuplexChannel channel2;
  client::UserClient alice2(rng, ca.public_key(),
                            client::enroll_user(rng, ca, "alice"));
  server2.accept(channel2);
  alice2.connect(channel2.a(), [&] { server2.pump(); });
  EXPECT_EQ(alice2.get_file("/persisted").second, to_bytes("still here"));
}

}  // namespace
}  // namespace seg
