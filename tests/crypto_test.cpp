// Known-answer and property tests for the from-scratch crypto substrate.
// Vectors come from FIPS 180-4 / RFC 4231 / RFC 5869 / FIPS 197 /
// NIST GCM spec / RFC 7748 / RFC 8032 / RFC 8439.
#include <gtest/gtest.h>

#include "common/error.h"
#include "common/rng.h"
#include "crypto/aes.h"
#include "crypto/drbg.h"
#include "crypto/ed25519.h"
#include "crypto/fe25519.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "crypto/sha2.h"
#include "crypto/x25519.h"

namespace seg::crypto {
namespace {

template <std::size_t N>
std::string hex(const std::array<std::uint8_t, N>& a) {
  return to_hex(BytesView(a.data(), a.size()));
}

// ---------------------------------------------------------------- SHA-2 ---

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex(Sha256::hash({})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(
      hex(Sha256::hash(to_bytes(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  TestRng rng(1);
  const Bytes data = rng.bytes(100'000);
  Sha256 h;
  std::size_t pos = 0;
  std::size_t step = 1;
  while (pos < data.size()) {
    const std::size_t take = std::min(step, data.size() - pos);
    h.update(BytesView(data.data() + pos, take));
    pos += take;
    step = step * 3 + 1;
  }
  EXPECT_EQ(h.finish(), Sha256::hash(data));
}

TEST(Sha256, MillionAs) {
  Bytes a(1'000'000, 'a');
  EXPECT_EQ(hex(Sha256::hash(a)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(hex(Sha512::hash({})),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(hex(Sha512::hash(to_bytes("abc"))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, StreamingMatchesOneShot) {
  TestRng rng(2);
  const Bytes data = rng.bytes(50'000);
  Sha512 h;
  for (std::size_t pos = 0; pos < data.size(); pos += 977) {
    const std::size_t take = std::min<std::size_t>(977, data.size() - pos);
    h.update(BytesView(data.data() + pos, take));
  }
  EXPECT_EQ(h.finish(), Sha512::hash(data));
}

// ----------------------------------------------------------- HMAC/HKDF ---

TEST(Hmac, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(HmacSha256::mac(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(
      hex(HmacSha256::mac(to_bytes("Jefe"),
                          to_bytes("what do ya want for nothing?"))),
      "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 case 6: 131-byte key.
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(HmacSha256::mac(
                key, to_bytes("Test Using Larger Than Block-Size Key - "
                              "Hash Key First"))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyConstantTime) {
  const Bytes key = to_bytes("k");
  const Bytes data = to_bytes("d");
  const auto mac = HmacSha256::mac(key, data);
  EXPECT_TRUE(HmacSha256::verify(key, data, mac));
  auto bad = mac;
  bad[0] ^= 1;
  EXPECT_FALSE(HmacSha256::verify(key, data, bad));
  EXPECT_FALSE(HmacSha256::verify(key, data, BytesView(mac.data(), 31)));
}

TEST(Hkdf, Rfc5869Case1) {
  const Bytes ikm(22, 0x0b);
  const Bytes salt = from_hex("000102030405060708090a0b0c");
  const Bytes info = from_hex("f0f1f2f3f4f5f6f7f8f9");
  const Bytes okm = hkdf(salt, ikm, info, 42);
  EXPECT_EQ(to_hex(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Hkdf, ZeroLengthSaltAndInfo) {
  // RFC 5869 case 3.
  const Bytes ikm(22, 0x0b);
  const Bytes okm = hkdf({}, ikm, {}, 42);
  EXPECT_EQ(to_hex(okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8");
}

TEST(Hkdf, ExpandLengthLimit) {
  const Bytes prk(32, 1);
  EXPECT_NO_THROW(hkdf_expand(prk, {}, 255 * 32));
  EXPECT_THROW(hkdf_expand(prk, {}, 255 * 32 + 1), CryptoError);
}

// ------------------------------------------------------------------ AES ---

TEST(Aes, Fips197Aes128) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(to_hex(BytesView(out, 16)), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes256) {
  const Bytes key =
      from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes pt = from_hex("00112233445566778899aabbccddeeff");
  Aes aes(key);
  std::uint8_t out[16];
  aes.encrypt_block(pt.data(), out);
  EXPECT_EQ(to_hex(BytesView(out, 16)), "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15, 0)), CryptoError);
  EXPECT_THROW(Aes(Bytes(24, 0)), CryptoError);  // AES-192 unsupported
  EXPECT_THROW(Aes(Bytes(0, 0)), CryptoError);
}

// ------------------------------------------------------------------ GCM ---

TEST(Gcm, NistCase1EmptyPlaintext) {
  AesGcm gcm(Bytes(16, 0));
  AesGcm::Iv iv{};
  AesGcm::Tag tag;
  const Bytes ct = gcm.seal(iv, {}, {}, tag);
  EXPECT_TRUE(ct.empty());
  EXPECT_EQ(hex(tag), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistCase2SingleZeroBlock) {
  AesGcm gcm(Bytes(16, 0));
  AesGcm::Iv iv{};
  AesGcm::Tag tag;
  const Bytes pt(16, 0);
  const Bytes ct = gcm.seal(iv, {}, pt, tag);
  EXPECT_EQ(to_hex(ct), "0388dace60b6a392f328c2b971b2fe78");
  EXPECT_EQ(hex(tag), "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, NistCase3FourBlocks) {
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  AesGcm gcm(key);
  AesGcm::Iv iv;
  const Bytes ivb = from_hex("cafebabefacedbaddecaf888");
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  AesGcm::Tag tag;
  const Bytes ct = gcm.seal(iv, {}, pt, tag);
  EXPECT_EQ(to_hex(ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985");
  EXPECT_EQ(hex(tag), "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Gcm, NistCase4WithAad) {
  const Bytes key = from_hex("feffe9928665731c6d6a8f9467308308");
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  AesGcm gcm(key);
  AesGcm::Iv iv;
  const Bytes ivb = from_hex("cafebabefacedbaddecaf888");
  std::copy(ivb.begin(), ivb.end(), iv.begin());
  AesGcm::Tag tag;
  const Bytes ct = gcm.seal(iv, aad, pt, tag);
  EXPECT_EQ(to_hex(ct),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091");
  EXPECT_EQ(hex(tag), "5bc94fbc3221a5db94fae95ae7121a47");
  EXPECT_EQ(gcm.open(iv, aad, ct, tag), pt);
}

TEST(Gcm, OpenRejectsTamperedCiphertext) {
  AesGcm gcm(Bytes(16, 7));
  AesGcm::Iv iv{};
  AesGcm::Tag tag;
  Bytes ct = gcm.seal(iv, {}, to_bytes("attack at dawn"), tag);
  ct[3] ^= 1;
  EXPECT_THROW(gcm.open(iv, {}, ct, tag), IntegrityError);
}

TEST(Gcm, OpenRejectsWrongAad) {
  AesGcm gcm(Bytes(16, 7));
  AesGcm::Iv iv{};
  AesGcm::Tag tag;
  const Bytes ct = gcm.seal(iv, to_bytes("aad"), to_bytes("msg"), tag);
  EXPECT_THROW(gcm.open(iv, to_bytes("bad"), ct, tag), IntegrityError);
}

TEST(Pae, RoundtripAndFormat) {
  TestRng rng(3);
  const Bytes key = rng.bytes(16);
  const Bytes pt = rng.bytes(1000);
  const Bytes sealed = pae_encrypt(key, rng, pt);
  EXPECT_EQ(sealed.size(), pt.size() + pae_overhead());
  EXPECT_EQ(pae_decrypt(key, sealed), pt);
}

TEST(Pae, ProbabilisticEncryption) {
  TestRng rng(4);
  const Bytes key = rng.bytes(16);
  const Bytes pt = to_bytes("same plaintext");
  // Same plaintext twice must yield different ciphertexts (random IV).
  EXPECT_NE(pae_encrypt(key, rng, pt), pae_encrypt(key, rng, pt));
}

TEST(Pae, DetectsTruncation) {
  TestRng rng(5);
  const Bytes key = rng.bytes(16);
  Bytes sealed = pae_encrypt(key, rng, to_bytes("hello"));
  sealed.pop_back();
  EXPECT_THROW(pae_decrypt(key, sealed), IntegrityError);
  EXPECT_THROW(pae_decrypt(key, Bytes(10, 0)), IntegrityError);
}

TEST(Pae, WrongKeyFails) {
  TestRng rng(6);
  const Bytes key = rng.bytes(16);
  Bytes other = key;
  other[0] ^= 1;
  const Bytes sealed = pae_encrypt(key, rng, to_bytes("secret"));
  EXPECT_THROW(pae_decrypt(other, sealed), IntegrityError);
}

TEST(Pae, Aes256KeysWork) {
  TestRng rng(7);
  const Bytes key = rng.bytes(32);
  const Bytes pt = rng.bytes(100);
  EXPECT_EQ(pae_decrypt(key, pae_encrypt(key, rng, pt)), pt);
}

class PaeSizesTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PaeSizesTest, RoundtripAtSize) {
  TestRng rng(GetParam() + 100);
  const Bytes key = rng.bytes(16);
  const Bytes pt = rng.bytes(GetParam());
  const Bytes aad = rng.bytes(GetParam() % 37);
  EXPECT_EQ(pae_decrypt(key, pae_encrypt(key, rng, pt, aad), aad), pt);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PaeSizesTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255,
                                           256, 4095, 4096, 4097, 70'000));

// ----------------------------------------------------------------- fe25519 ---

TEST(Fe25519, MulMatchesKnownIdentity) {
  // (2^255 - 20) == -1 mod p; (-1) * (-1) == 1.
  Fe minus_one, one, prod;
  fe_one(one);
  fe_neg(minus_one, one);
  fe_mul(prod, minus_one, minus_one);
  std::uint8_t a[32], b[32];
  fe_tobytes(a, prod);
  fe_tobytes(b, one);
  EXPECT_EQ(to_hex(BytesView(a, 32)), to_hex(BytesView(b, 32)));
}

TEST(Fe25519, InvertRoundtrip) {
  TestRng rng(8);
  for (int i = 0; i < 20; ++i) {
    std::uint8_t raw[32];
    rng.fill(raw);
    raw[31] &= 0x7f;
    Fe x, xinv, prod, one;
    fe_frombytes(x, raw);
    if (fe_is_zero(x)) continue;
    fe_invert(xinv, x);
    fe_mul(prod, x, xinv);
    fe_one(one);
    std::uint8_t got[32], want[32];
    fe_tobytes(got, prod);
    fe_tobytes(want, one);
    EXPECT_EQ(to_hex(BytesView(got, 32)), to_hex(BytesView(want, 32)));
  }
}

TEST(Fe25519, TobytesIsCanonical) {
  // p encodes to zero.
  Fe p;
  p.v[0] = (std::uint64_t{1} << 51) - 19;
  for (int i = 1; i < 5; ++i) p.v[i] = (std::uint64_t{1} << 51) - 1;
  std::uint8_t s[32];
  fe_tobytes(s, p);
  for (auto b : BytesView(s, 32)) EXPECT_EQ(b, 0);
  EXPECT_TRUE(fe_is_zero(p));
}

// --------------------------------------------------------------- X25519 ---

TEST(X25519, Rfc7748Vector1) {
  X25519Key scalar, u;
  const Bytes s = from_hex(
      "a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const Bytes p = from_hex(
      "e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  std::copy(s.begin(), s.end(), scalar.begin());
  std::copy(p.begin(), p.end(), u.begin());
  EXPECT_EQ(hex(x25519(scalar, u)),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

TEST(X25519, Rfc7748DhAliceBob) {
  X25519Key alice_priv, bob_priv;
  const Bytes a = from_hex(
      "77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  const Bytes b = from_hex(
      "5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");
  std::copy(a.begin(), a.end(), alice_priv.begin());
  std::copy(b.begin(), b.end(), bob_priv.begin());
  const auto alice_pub = x25519_base(alice_priv);
  const auto bob_pub = x25519_base(bob_priv);
  EXPECT_EQ(hex(alice_pub),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(hex(bob_pub),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");
  const auto k1 = x25519_shared(alice_priv, bob_pub);
  const auto k2 = x25519_shared(bob_priv, alice_pub);
  EXPECT_EQ(k1, k2);
  EXPECT_EQ(hex(k1),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, GeneratedPairsAgree) {
  TestRng rng(9);
  for (int i = 0; i < 5; ++i) {
    const auto a = x25519_generate(rng);
    const auto b = x25519_generate(rng);
    EXPECT_EQ(x25519_shared(a.private_key, b.public_key),
              x25519_shared(b.private_key, a.public_key));
  }
}

TEST(X25519, RejectsAllZeroShared) {
  TestRng rng(10);
  const auto a = x25519_generate(rng);
  X25519Key zero{};
  EXPECT_THROW(x25519_shared(a.private_key, zero), CryptoError);
}

// -------------------------------------------------------------- Ed25519 ---

TEST(Ed25519, Rfc8032Test1EmptyMessage) {
  Ed25519Seed seed;
  const Bytes s = from_hex(
      "9d61b19deffd5a60ba844af492ec2cc44449c5697b326919703bac031cae7f60");
  std::copy(s.begin(), s.end(), seed.begin());
  const auto pk = ed25519_public_key(seed);
  EXPECT_EQ(hex(pk),
            "d75a980182b10ab7d54bfed3c964073a0ee172f3daa62325af021a68f707511a");
  const auto sig = ed25519_sign(seed, pk, {});
  EXPECT_EQ(hex(sig),
            "e5564300c360ac729086e2cc806e828a84877f1eb8e5d974d873e06522490155"
            "5fb8821590a33bacc61e39701cf9b46bd25bf5f0595bbe24655141438e7a100b");
  EXPECT_TRUE(ed25519_verify(pk, {}, sig));
}

TEST(Ed25519, Rfc8032Test2OneByte) {
  Ed25519Seed seed;
  const Bytes s = from_hex(
      "4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
  std::copy(s.begin(), s.end(), seed.begin());
  const auto pk = ed25519_public_key(seed);
  EXPECT_EQ(hex(pk),
            "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");
  const Bytes msg = from_hex("72");
  const auto sig = ed25519_sign(seed, pk, msg);
  EXPECT_EQ(hex(sig),
            "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
            "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
  EXPECT_TRUE(ed25519_verify(pk, msg, sig));
}

TEST(Ed25519, VerifyRejectsTamperedMessage) {
  TestRng rng(11);
  const auto pair = ed25519_generate(rng);
  const Bytes msg = to_bytes("the message");
  const auto sig = ed25519_sign(pair.seed, pair.public_key, msg);
  EXPECT_TRUE(ed25519_verify(pair.public_key, msg, sig));
  EXPECT_FALSE(ed25519_verify(pair.public_key, to_bytes("the messagf"), sig));
}

TEST(Ed25519, VerifyRejectsTamperedSignature) {
  TestRng rng(12);
  const auto pair = ed25519_generate(rng);
  const Bytes msg = to_bytes("msg");
  auto sig = ed25519_sign(pair.seed, pair.public_key, msg);
  sig[0] ^= 1;
  EXPECT_FALSE(ed25519_verify(pair.public_key, msg, sig));
}

TEST(Ed25519, VerifyRejectsWrongKey) {
  TestRng rng(13);
  const auto pair1 = ed25519_generate(rng);
  const auto pair2 = ed25519_generate(rng);
  const Bytes msg = to_bytes("msg");
  const auto sig = ed25519_sign(pair1.seed, pair1.public_key, msg);
  EXPECT_FALSE(ed25519_verify(pair2.public_key, msg, sig));
}

TEST(Ed25519, RejectsNonCanonicalS) {
  TestRng rng(14);
  const auto pair = ed25519_generate(rng);
  const Bytes msg = to_bytes("m");
  auto sig = ed25519_sign(pair.seed, pair.public_key, msg);
  // Force S >= L by setting its top bits.
  sig[63] |= 0xf0;
  EXPECT_FALSE(ed25519_verify(pair.public_key, msg, sig));
}

class Ed25519MessageSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Ed25519MessageSizes, SignVerifyRoundtrip) {
  TestRng rng(GetParam() + 500);
  const auto pair = ed25519_generate(rng);
  const Bytes msg = rng.bytes(GetParam());
  const auto sig = ed25519_sign(pair.seed, pair.public_key, msg);
  EXPECT_TRUE(ed25519_verify(pair.public_key, msg, sig));
}

INSTANTIATE_TEST_SUITE_P(Sizes, Ed25519MessageSizes,
                         ::testing::Values(0, 1, 63, 64, 65, 127, 128, 1024));

// ----------------------------------------------------------------- DRBG ---

TEST(ChaCha, Rfc8439BlockFunction) {
  const Bytes key = from_hex(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f");
  const Bytes nonce = from_hex("000000090000004a00000000");
  std::uint8_t out[64];
  chacha20_block(key.data(), 1, nonce.data(), out);
  EXPECT_EQ(to_hex(BytesView(out, 64)),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(Drbg, DeterministicFromSeed) {
  std::array<std::uint8_t, 32> seed{};
  seed[0] = 1;
  ChaChaDrbg a(seed), b(seed);
  EXPECT_EQ(a.bytes(100), b.bytes(100));
}

TEST(Drbg, DifferentSeedsDiffer) {
  std::array<std::uint8_t, 32> s1{}, s2{};
  s2[0] = 1;
  ChaChaDrbg a(s1), b(s2);
  EXPECT_NE(a.bytes(64), b.bytes(64));
}

TEST(Drbg, OutputLooksUniform) {
  std::array<std::uint8_t, 32> seed{};
  ChaChaDrbg rng(seed);
  const Bytes data = rng.bytes(100'000);
  // Count ones; should be ~400000 +- 4 sigma (~1800).
  std::size_t ones = 0;
  for (auto byte : data) ones += static_cast<std::size_t>(__builtin_popcount(byte));
  EXPECT_GT(ones, 398'000u);
  EXPECT_LT(ones, 402'000u);
}

TEST(Drbg, SystemRngProducesDistinctDraws) {
  auto& rng = system_rng();
  EXPECT_NE(rng.bytes(32), rng.bytes(32));
}

}  // namespace
}  // namespace seg::crypto
