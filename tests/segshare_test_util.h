// Shared test rig: a full SeGShare deployment on simulated infrastructure
// (CA, SGX platform, three adversary-wrapped stores, enclave, untrusted
// server, connected user clients).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "client/user_client.h"
#include "core/config.h"
#include "core/enclave.h"
#include "core/server.h"
#include "net/channel.h"
#include "sgx/platform.h"
#include "store/untrusted_store.h"
#include "tls/certificate.h"

namespace seg::testutil {

class Rig {
 public:
  explicit Rig(core::EnclaveConfig config = {}, std::uint64_t seed = 0x5e65)
      : rng_(seed),
        ca_(rng_),
        platform_(rng_),
        content_(std::make_unique<store::MemoryStore>()),
        group_(std::make_unique<store::MemoryStore>()),
        dedup_(std::make_unique<store::MemoryStore>()) {
    enclave_ = std::make_unique<core::SegShareEnclave>(
        platform_, rng_, ca_.public_key(),
        core::Stores{content_, group_, dedup_}, config);
    core::SegShareServer::provision_certificate(*enclave_, ca_, platform_);
    server_ = std::make_unique<core::SegShareServer>(*enclave_);
  }

  /// Enrolls (if needed) and connects a user; returns the ready client.
  client::UserClient& connect(const std::string& user) {
    auto channel = std::make_unique<net::DuplexChannel>();
    auto client = std::make_unique<client::UserClient>(
        rng_, ca_.public_key(), client::enroll_user(rng_, ca_, user));
    server_->accept(*channel);
    client->connect(channel->a(), [this] { server_->pump(); });
    channels_.push_back(std::move(channel));
    clients_.push_back(std::move(client));
    return *clients_.back();
  }

  TestRng& rng() { return rng_; }
  tls::CertificateAuthority& ca() { return ca_; }
  sgx::SgxPlatform& platform() { return platform_; }
  store::AdversaryStore& content_store() { return content_; }
  store::AdversaryStore& group_store() { return group_; }
  store::AdversaryStore& dedup_store() { return dedup_; }
  core::SegShareEnclave& enclave() { return *enclave_; }
  core::SegShareServer& server() { return *server_; }
  net::DuplexChannel& channel(std::size_t i) { return *channels_.at(i); }

 private:
  TestRng rng_;
  tls::CertificateAuthority ca_;
  sgx::SgxPlatform platform_;
  store::AdversaryStore content_;
  store::AdversaryStore group_;
  store::AdversaryStore dedup_;
  std::unique_ptr<core::SegShareEnclave> enclave_;
  std::unique_ptr<core::SegShareServer> server_;
  std::vector<std::unique_ptr<net::DuplexChannel>> channels_;
  std::vector<std::unique_ptr<client::UserClient>> clients_;
};

}  // namespace seg::testutil
