#!/bin/sh
# Schema check for the structured bench reports (DESIGN.md §8).
#
# Usage: check_bench_json.sh <dir> [min_count]
#
# Validates every BENCH_*.json in <dir> against segshare-bench-v1:
#   - parses as JSON
#   - schema == "segshare-bench-v1", bench is a non-empty string,
#     quick is a boolean, results is a list
#   - every result has a string name, finite numeric value, string unit
#   - no result name leaks path-like or key-like material (names must
#     stay in the metric charset plus '.'-separated components)
# and, when min_count is given, that at least that many reports exist.
set -eu

dir="${1:?usage: check_bench_json.sh <dir> [min_count]}"
min_count="${2:-1}"

python3 - "$dir" "$min_count" <<'EOF'
import glob, json, os, re, sys

directory, min_count = sys.argv[1], int(sys.argv[2])
paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
if len(paths) < min_count:
    sys.exit(f"FAIL: {len(paths)} reports in {directory}, expected >= {min_count}")

name_re = re.compile(r"^[A-Za-z0-9._-]+$")
failures = []
for path in paths:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except ValueError as err:
        failures.append(f"{path}: not valid JSON: {err}")
        continue
    def bad(msg):
        failures.append(f"{path}: {msg}")
    if doc.get("schema") != "segshare-bench-v1":
        bad(f"schema is {doc.get('schema')!r}")
    if not isinstance(doc.get("bench"), str) or not doc["bench"]:
        bad("bench must be a non-empty string")
    if not isinstance(doc.get("quick"), bool):
        bad("quick must be a boolean")
    results = doc.get("results")
    if not isinstance(results, list):
        bad("results must be a list")
        continue
    if not results:
        bad("results is empty")
    for i, result in enumerate(results):
        if not isinstance(result, dict):
            bad(f"results[{i}] is not an object")
            continue
        name = result.get("name")
        if not isinstance(name, str) or not name_re.match(name or ""):
            bad(f"results[{i}].name {name!r} outside metric charset")
        value = result.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            bad(f"results[{i}].value {value!r} is not a number")
        if not isinstance(result.get("unit"), str):
            bad(f"results[{i}].unit is not a string")

if failures:
    print("\n".join(failures))
    sys.exit(f"FAIL: {len(failures)} schema violations")
print(f"OK: {len(paths)} bench reports valid in {directory}")
EOF
