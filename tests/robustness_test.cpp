// Robustness: the enclave faces an attacker who "can send arbitrary
// requests to the enclave" (§III-B). Malformed handshakes, garbage
// records, corrupted frames and protocol-state violations must never
// crash the enclave or corrupt other sessions — they surface as clean
// authentication/protocol errors.
#include <gtest/gtest.h>

#include "common/error.h"
#include "segshare_test_util.h"

namespace seg {
namespace {

using testutil::Rig;

TEST(Robustness, GarbageInsteadOfClientHello) {
  Rig rig;
  TestRng rng(1);
  for (int i = 0; i < 20; ++i) {
    net::DuplexChannel channel;
    const auto id = rig.enclave().accept(channel.b());
    channel.a().send(rng.bytes(rng.uniform(200) + 1));
    EXPECT_THROW(rig.enclave().service(id), Error) << "iteration " << i;
    rig.enclave().close(id);
  }
  // The enclave still serves honest users afterwards.
  auto& alice = rig.connect("alice");
  EXPECT_TRUE(alice.put_file("/ok", to_bytes("fine")).ok());
}

TEST(Robustness, TruncatedHandshakeFlights) {
  Rig rig;
  TestRng rng(2);
  client::UserClient alice(rng, rig.ca().public_key(),
                           client::enroll_user(rng, rig.ca(), "alice"));
  net::DuplexChannel channel;
  const auto id = rig.enclave().accept(channel.b());

  // Build a real ClientHello, then truncate it.
  tls::ClientHandshake handshake(rng, rig.ca().public_key(),
                                 client::enroll_user(rng, rig.ca(), "x").certificate,
                                 crypto::Ed25519Seed{});
  Bytes hello = handshake.start();
  hello.resize(hello.size() / 2);
  channel.a().send(hello);
  EXPECT_THROW(rig.enclave().service(id), Error);
}

TEST(Robustness, GarbageRecordsAfterHandshake) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  // Inject raw garbage onto alice's established connection.
  TestRng rng(3);
  rig.channel(0).a().send(rng.bytes(64));
  EXPECT_THROW(rig.server().pump(), IntegrityError);
}

TEST(Robustness, ReplayedRecordRejected) {
  Rig rig;
  auto& alice = rig.connect("alice");
  // Capture the encrypted record of a request, then replay it.
  ASSERT_TRUE(alice.stat("/").ok());
  // Craft a replay: send the same protected bytes twice by sniffing is
  // not directly possible through the client API, so emulate: send a
  // record protected under a stale sequence number via a second client
  // object sharing nothing — decryption must fail.
  TestRng rng(4);
  rig.channel(0).a().send(rng.bytes(48));
  EXPECT_THROW(rig.server().pump(), IntegrityError);
}

TEST(Robustness, DataFrameOutsidePut) {
  Rig rig;
  auto& alice = rig.connect("alice");
  // Reach into the client internals is not possible; instead drive the
  // enclave directly with a well-formed secure channel.
  // Simplest path: a malformed *application* frame type is covered by the
  // proto tests; here assert that the server responds BAD_REQUEST rather
  // than dying when END arrives without a PUT. We emulate by calling
  // put_file with a zero-size body twice — the protocol allows it — then
  // confirm normal operation continues.
  EXPECT_TRUE(alice.put_file("/a", {}).ok());
  EXPECT_TRUE(alice.put_file("/a", {}).ok());
  EXPECT_TRUE(alice.get_file("/a").first.ok());
}

TEST(Robustness, RandomBytesNeverCrashParsers) {
  TestRng rng(5);
  for (int i = 0; i < 500; ++i) {
    const Bytes junk = rng.bytes(rng.uniform(100));
    EXPECT_NO_FATAL_FAILURE({
      try { proto::Request::parse(junk); } catch (const Error&) {}
      try { proto::Response::parse(junk); } catch (const Error&) {}
      try { proto::unframe(junk); } catch (const Error&) {}
      try { tls::Certificate::parse(junk); } catch (const Error&) {}
      try { tls::CertificateSigningRequest::parse(junk); } catch (const Error&) {}
      try { fs::Acl::parse(junk); } catch (const Error&) {}
      try { fs::Directory::parse(junk); } catch (const Error&) {}
      try { fs::MemberList::parse(junk); } catch (const Error&) {}
      try { fs::GroupList::parse(junk); } catch (const Error&) {}
    });
  }
}

TEST(Robustness, MutatedValidMessagesNeverCrashParsers) {
  TestRng rng(6);
  // Start from a valid serialized request and flip random bits.
  proto::Request req;
  req.verb = proto::Verb::kSetPermission;
  req.path = "/a/b";
  req.group = "team";
  const Bytes valid = req.serialize();
  for (int i = 0; i < 500; ++i) {
    Bytes mutated = valid;
    const std::size_t flips = rng.uniform(4) + 1;
    for (std::size_t f = 0; f < flips; ++f)
      mutated[rng.uniform(mutated.size())] ^=
          static_cast<std::uint8_t>(1u << rng.uniform(8));
    try {
      proto::Request::parse(mutated);
    } catch (const Error&) {
      // rejection is fine; crashing is not
    }
  }
}

TEST(Robustness, OversizeAnnouncedBodyIsRejected) {
  // A PUT that announces one size but sends another must not commit.
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/honest", to_bytes("data")).ok());
  // The client implementation always matches sizes; the size check is
  // enforced server-side (covered in enclave handle_end) — assert the
  // honest path and that storage reflects exactly one file object.
  EXPECT_TRUE(alice.get_file("/honest").first.ok());
}

TEST(Robustness, ManyFailedConnectionsDoNotExhaustServer) {
  Rig rig;
  TestRng rng(7);
  for (int i = 0; i < 50; ++i) {
    net::DuplexChannel channel;
    const auto id = rig.enclave().accept(channel.b());
    channel.a().send(rng.bytes(32));
    try {
      rig.enclave().service(id);
    } catch (const Error&) {
    }
    rig.enclave().close(id);
  }
  auto& alice = rig.connect("alice");
  EXPECT_TRUE(alice.put_file("/still-works", to_bytes("yes")).ok());
}

}  // namespace
}  // namespace seg
