#include <gtest/gtest.h>

#include <filesystem>
#include <memory>

#include "common/error.h"
#include "store/untrusted_store.h"

namespace seg::store {
namespace {

// Shared conformance suite run against every backend.
class StoreConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      store_ = std::make_unique<MemoryStore>();
    } else if (GetParam() == "disk") {
      dir_ = std::filesystem::temp_directory_path() /
             ("seg_store_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(dir_);
      store_ = std::make_unique<DiskStore>(dir_.string());
    } else {
      store_ = std::make_unique<AdversaryStore>(std::make_unique<MemoryStore>());
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<UntrustedStore> store_;
  std::filesystem::path dir_;
};

TEST_P(StoreConformanceTest, PutGetRoundtrip) {
  store_->put("a", to_bytes("hello"));
  const auto got = store_->get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("hello"));
}

TEST_P(StoreConformanceTest, GetMissingReturnsNullopt) {
  EXPECT_FALSE(store_->get("nope").has_value());
  EXPECT_FALSE(store_->exists("nope"));
}

TEST_P(StoreConformanceTest, OverwriteReplaces) {
  store_->put("a", to_bytes("v1"));
  store_->put("a", to_bytes("version2"));
  EXPECT_EQ(*store_->get("a"), to_bytes("version2"));
}

TEST_P(StoreConformanceTest, EmptyBlobAllowed) {
  store_->put("empty", Bytes{});
  ASSERT_TRUE(store_->get("empty").has_value());
  EXPECT_TRUE(store_->get("empty")->empty());
  EXPECT_TRUE(store_->exists("empty"));
}

TEST_P(StoreConformanceTest, RemoveDeletes) {
  store_->put("a", to_bytes("x"));
  store_->remove("a");
  EXPECT_FALSE(store_->exists("a"));
  // Removing a missing blob is a no-op.
  EXPECT_NO_THROW(store_->remove("a"));
}

TEST_P(StoreConformanceTest, RenameMoves) {
  store_->put("a", to_bytes("payload"));
  store_->rename("a", "b");
  EXPECT_FALSE(store_->exists("a"));
  EXPECT_EQ(*store_->get("b"), to_bytes("payload"));
}

TEST_P(StoreConformanceTest, RenameMissingThrows) {
  EXPECT_THROW(store_->rename("ghost", "b"), StorageError);
}

TEST_P(StoreConformanceTest, ListReturnsAllNames) {
  store_->put("x", to_bytes("1"));
  store_->put("y", to_bytes("2"));
  auto names = store_->list();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"x", "y"}));
}

TEST_P(StoreConformanceTest, TotalBytesTracksContent) {
  EXPECT_EQ(store_->total_bytes(), 0u);
  store_->put("a", Bytes(100, 1));
  store_->put("b", Bytes(50, 2));
  EXPECT_EQ(store_->total_bytes(), 150u);
  store_->remove("a");
  EXPECT_EQ(store_->total_bytes(), 50u);
}

TEST_P(StoreConformanceTest, NamesWithSpecialCharacters) {
  const std::string weird = "dir/with:odd %chars\xc3\xa9";
  store_->put(weird, to_bytes("v"));
  EXPECT_TRUE(store_->exists(weird));
  EXPECT_EQ(*store_->get(weird), to_bytes("v"));
  const auto names = store_->list();
  EXPECT_NE(std::find(names.begin(), names.end(), weird), names.end());
}

TEST_P(StoreConformanceTest, BinaryDataPreserved) {
  Bytes blob(1000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::uint8_t>(i * 31);
  store_->put("bin", blob);
  EXPECT_EQ(*store_->get("bin"), blob);
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreConformanceTest,
                         ::testing::Values("memory", "disk", "adversary"));

// --- adversary-specific behaviour ---

TEST(AdversaryStore, TamperFlipBit) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", Bytes{0x00});
  EXPECT_TRUE(store.tamper_flip_bit("a", 0));
  EXPECT_EQ(*store.get("a"), Bytes{0x01});
  EXPECT_FALSE(store.tamper_flip_bit("missing", 0));
}

TEST(AdversaryStore, BlobRollback) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", to_bytes("old"));
  store.snapshot_blob("a");
  store.put("a", to_bytes("new"));
  EXPECT_TRUE(store.rollback_blob("a"));
  EXPECT_EQ(*store.get("a"), to_bytes("old"));
  EXPECT_FALSE(store.rollback_blob("never-snapshotted"));
}

TEST(AdversaryStore, BlobRollbackToAbsence) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.snapshot_blob("a");  // snapshot of "not present"
  store.put("a", to_bytes("new"));
  EXPECT_TRUE(store.rollback_blob("a"));
  EXPECT_FALSE(store.exists("a"));
}

TEST(AdversaryStore, FullRollback) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", to_bytes("1"));
  store.put("b", to_bytes("2"));
  store.snapshot_all();
  store.put("a", to_bytes("changed"));
  store.put("c", to_bytes("3"));
  store.remove("b");
  store.rollback_all();
  EXPECT_EQ(*store.get("a"), to_bytes("1"));
  EXPECT_EQ(*store.get("b"), to_bytes("2"));
  EXPECT_FALSE(store.exists("c"));
}

TEST(AdversaryStore, FullRollbackWithoutSnapshotThrows) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  EXPECT_THROW(store.rollback_all(), StorageError);
}

}  // namespace
}  // namespace seg::store
