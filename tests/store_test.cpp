#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/rng.h"
#include "sgx/platform.h"
#include "store/async_store.h"
#include "store/untrusted_store.h"

namespace seg::store {
namespace {

// Shared conformance suite run against every backend.
class StoreConformanceTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    if (GetParam() == "memory") {
      store_ = std::make_unique<MemoryStore>();
    } else if (GetParam() == "disk") {
      dir_ = std::filesystem::temp_directory_path() /
             ("seg_store_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(dir_);
      store_ = std::make_unique<DiskStore>(dir_.string());
    } else {
      store_ = std::make_unique<AdversaryStore>(std::make_unique<MemoryStore>());
    }
  }

  void TearDown() override {
    store_.reset();
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  std::unique_ptr<UntrustedStore> store_;
  std::filesystem::path dir_;
};

TEST_P(StoreConformanceTest, PutGetRoundtrip) {
  store_->put("a", to_bytes("hello"));
  const auto got = store_->get("a");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, to_bytes("hello"));
}

TEST_P(StoreConformanceTest, GetMissingReturnsNullopt) {
  EXPECT_FALSE(store_->get("nope").has_value());
  EXPECT_FALSE(store_->exists("nope"));
}

TEST_P(StoreConformanceTest, OverwriteReplaces) {
  store_->put("a", to_bytes("v1"));
  store_->put("a", to_bytes("version2"));
  EXPECT_EQ(*store_->get("a"), to_bytes("version2"));
}

TEST_P(StoreConformanceTest, EmptyBlobAllowed) {
  store_->put("empty", Bytes{});
  ASSERT_TRUE(store_->get("empty").has_value());
  EXPECT_TRUE(store_->get("empty")->empty());
  EXPECT_TRUE(store_->exists("empty"));
}

TEST_P(StoreConformanceTest, RemoveDeletes) {
  store_->put("a", to_bytes("x"));
  store_->remove("a");
  EXPECT_FALSE(store_->exists("a"));
  // Removing a missing blob is a no-op.
  EXPECT_NO_THROW(store_->remove("a"));
}

TEST_P(StoreConformanceTest, RenameMoves) {
  store_->put("a", to_bytes("payload"));
  store_->rename("a", "b");
  EXPECT_FALSE(store_->exists("a"));
  EXPECT_EQ(*store_->get("b"), to_bytes("payload"));
}

TEST_P(StoreConformanceTest, RenameMissingThrows) {
  EXPECT_THROW(store_->rename("ghost", "b"), StorageError);
}

// Regression: rename(a, a) used to self-move the blob's buffer and then
// erase the (single) map entry, destroying the blob entirely.
TEST_P(StoreConformanceTest, RenameToSelfKeepsBlob) {
  store_->put("a", to_bytes("survives"));
  store_->rename("a", "a");
  ASSERT_TRUE(store_->exists("a"));
  EXPECT_EQ(*store_->get("a"), to_bytes("survives"));
  // Renaming a missing blob onto itself is still an error.
  EXPECT_THROW(store_->rename("ghost", "ghost"), StorageError);
}

TEST_P(StoreConformanceTest, ListReturnsAllNames) {
  store_->put("x", to_bytes("1"));
  store_->put("y", to_bytes("2"));
  auto names = store_->list();
  std::sort(names.begin(), names.end());
  EXPECT_EQ(names, (std::vector<std::string>{"x", "y"}));
}

TEST_P(StoreConformanceTest, TotalBytesTracksContent) {
  EXPECT_EQ(store_->total_bytes(), 0u);
  store_->put("a", Bytes(100, 1));
  store_->put("b", Bytes(50, 2));
  EXPECT_EQ(store_->total_bytes(), 150u);
  store_->remove("a");
  EXPECT_EQ(store_->total_bytes(), 50u);
}

TEST_P(StoreConformanceTest, NamesWithSpecialCharacters) {
  const std::string weird = "dir/with:odd %chars\xc3\xa9";
  store_->put(weird, to_bytes("v"));
  EXPECT_TRUE(store_->exists(weird));
  EXPECT_EQ(*store_->get(weird), to_bytes("v"));
  const auto names = store_->list();
  EXPECT_NE(std::find(names.begin(), names.end(), weird), names.end());
}

TEST_P(StoreConformanceTest, BinaryDataPreserved) {
  Bytes blob(1000);
  for (std::size_t i = 0; i < blob.size(); ++i)
    blob[i] = static_cast<std::uint8_t>(i * 31);
  store_->put("bin", blob);
  EXPECT_EQ(*store_->get("bin"), blob);
}

INSTANTIATE_TEST_SUITE_P(Backends, StoreConformanceTest,
                         ::testing::Values("memory", "disk", "adversary"));

// --- adversary-specific behaviour ---

TEST(AdversaryStore, TamperFlipBit) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", Bytes{0x00});
  EXPECT_TRUE(store.tamper_flip_bit("a", 0));
  EXPECT_EQ(*store.get("a"), Bytes{0x01});
  EXPECT_FALSE(store.tamper_flip_bit("missing", 0));
}

TEST(AdversaryStore, BlobRollback) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", to_bytes("old"));
  store.snapshot_blob("a");
  store.put("a", to_bytes("new"));
  EXPECT_TRUE(store.rollback_blob("a"));
  EXPECT_EQ(*store.get("a"), to_bytes("old"));
  EXPECT_FALSE(store.rollback_blob("never-snapshotted"));
}

TEST(AdversaryStore, BlobRollbackToAbsence) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.snapshot_blob("a");  // snapshot of "not present"
  store.put("a", to_bytes("new"));
  EXPECT_TRUE(store.rollback_blob("a"));
  EXPECT_FALSE(store.exists("a"));
}

TEST(AdversaryStore, FullRollback) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  store.put("a", to_bytes("1"));
  store.put("b", to_bytes("2"));
  store.snapshot_all();
  store.put("a", to_bytes("changed"));
  store.put("c", to_bytes("3"));
  store.remove("b");
  store.rollback_all();
  EXPECT_EQ(*store.get("a"), to_bytes("1"));
  EXPECT_EQ(*store.get("b"), to_bytes("2"));
  EXPECT_FALSE(store.exists("c"));
}

TEST(AdversaryStore, FullRollbackWithoutSnapshotThrows) {
  AdversaryStore store(std::make_unique<MemoryStore>());
  EXPECT_THROW(store.rollback_all(), StorageError);
}

// --- DiskStore: crash atomicity, adversarial names, thread safety ---

class DiskStoreTest : public ::testing::Test {
 protected:
  DiskStoreTest()
      : dir_(std::filesystem::temp_directory_path() /
             ("seg_disk_test_" + std::to_string(::getpid()))) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~DiskStoreTest() override { std::filesystem::remove_all(dir_); }

  void plant(const std::string& file, const std::string& content) {
    std::ofstream out(dir_ / file, std::ios::binary);
    out << content;
  }

  std::filesystem::path dir_;
};

TEST_F(DiskStoreTest, StaleTempFilesSweptAtConstruction) {
  // A crash between temp write and rename leaves "#tmp.<seq>" files; the
  // published blob set is intact, so construction sweeps the leftovers.
  plant("#tmp.0", "half-written");
  plant("#tmp.17", "");
  plant("survivor", "kept");
  DiskStore store(dir_.string());
  EXPECT_FALSE(std::filesystem::exists(dir_ / "#tmp.0"));
  EXPECT_FALSE(std::filesystem::exists(dir_ / "#tmp.17"));
  EXPECT_EQ(store.list(), std::vector<std::string>{"survivor"});
  EXPECT_EQ(store.total_bytes(), 4u);
}

TEST_F(DiskStoreTest, InFlightTempFilesInvisibleToScans) {
  DiskStore store(dir_.string());
  store.put("published", Bytes(10, 1));
  // Simulates another thread's put between temp write and rename.
  plant("#tmp.999", "in flight");
  EXPECT_EQ(store.list(), std::vector<std::string>{"published"});
  EXPECT_EQ(store.total_bytes(), 10u);
  EXPECT_FALSE(store.exists("#tmp.999"));
}

TEST_F(DiskStoreTest, MalformedEscapesSkippedAndCounted) {
  DiskStore store(dir_.string());
  store.put("good name", to_bytes("v"));  // encodes the space as %20
  // Adversary-planted directory entries (§III-B): a non-hex escape, a
  // truncated escape, and a bare '%'. These used to feed std::stoi and
  // throw (or worse, alias a valid name); now they are skipped + counted.
  plant("%zz-junk", "x");
  plant("trailing%a", "x");
  plant("%", "x");
  EXPECT_EQ(store.list(), std::vector<std::string>{"good name"});
  EXPECT_EQ(store.total_bytes(), 1u);
  EXPECT_EQ(store.op_counts().rejected_names, 3u);
}

TEST_F(DiskStoreTest, RenameErrorIncludesSystemReason) {
  DiskStore store(dir_.string());
  try {
    store.rename("ghost-a", "ghost-b");
    FAIL() << "rename of a missing blob must throw";
  } catch (const StorageError& e) {
    // The OS-level reason (ENOENT here) is part of the message, so an
    // operator can tell a missing blob from EXDEV or a permission issue.
    EXPECT_NE(std::string(e.what()).find("ghost-a"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("No such file"), std::string::npos)
        << e.what();
  }
}

TEST_F(DiskStoreTest, ConcurrentOverwritesNeverTearABlob) {
  DiskStore store(dir_.string());
  const Bytes a(32 << 10, 0xaa);
  const Bytes b(32 << 10, 0xbb);
  store.put("hot", a);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::thread writer([&] {
    for (int i = 0; i < 200; ++i) store.put("hot", i % 2 == 0 ? b : a);
    stop = true;
  });
  std::thread reader([&] {
    while (!stop) {
      const auto got = store.get("hot");
      // Atomic temp+rename publish: a reader sees a complete old or a
      // complete new blob, never a truncated or mixed one.
      if (!got || (*got != a && *got != b)) ++failures;
    }
  });
  writer.join();
  reader.join();
  EXPECT_EQ(failures.load(), 0);
  const auto final_blob = store.get("hot");
  ASSERT_TRUE(final_blob.has_value());
  EXPECT_TRUE(*final_blob == a || *final_blob == b);
}

// --- async store I/O (submission/completion queues) ---

/// Store whose puts always fail: error-propagation fixture.
class FailingStore final : public UntrustedStore {
 public:
  void put(const std::string& name, BytesView) override {
    throw StorageError("injected put failure: " + name);
  }
  std::optional<Bytes> get(const std::string& name) const override {
    return inner_.get(name);
  }
  bool exists(const std::string& name) const override {
    return inner_.exists(name);
  }
  void remove(const std::string& name) override { inner_.remove(name); }
  void rename(const std::string& from, const std::string& to) override {
    inner_.rename(from, to);
  }
  std::vector<std::string> list() const override { return inner_.list(); }
  std::uint64_t total_bytes() const override { return inner_.total_bytes(); }

 private:
  MemoryStore inner_;
};

TEST(AsyncStore, InlineFallbackWithoutPool) {
  MemoryStore store;
  AsyncStore async(store, nullptr);
  EXPECT_FALSE(async.async());
  async.complete_put(async.submit_put("a", to_bytes("inline")));
  EXPECT_EQ(*store.get("a"), to_bytes("inline"));
  EXPECT_EQ(async.complete_get(async.submit_get("a")), to_bytes("inline"));
  EXPECT_EQ(async.complete_get(async.submit_get("missing")), std::nullopt);
}

TEST(AsyncStore, DisabledPoolCountsInlineOps) {
  MemoryStore store;
  StoreIoPool pool(StoreIoPool::Options{0, 8});
  EXPECT_FALSE(pool.enabled());
  AsyncStore async(store, &pool);
  EXPECT_FALSE(async.async());
  async.complete_put(async.submit_put("a", to_bytes("x")));
  EXPECT_EQ(async.complete_get(async.submit_get("a")), to_bytes("x"));
  const auto stats = pool.stats();
  EXPECT_EQ(stats.inline_ops, 2u);
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST(AsyncStore, AsyncRoundtripManyOps) {
  MemoryStore store;
  StoreIoPool pool(StoreIoPool::Options{3, 16});
  ASSERT_TRUE(pool.enabled());
  AsyncStore async(store, &pool);
  ASSERT_TRUE(async.async());

  constexpr int kOps = 100;
  std::vector<AsyncStore::Ticket> puts;
  for (int i = 0; i < kOps; ++i)
    puts.push_back(
        async.submit_put("blob" + std::to_string(i), Bytes(100 + i, 7)));
  for (auto& ticket : puts) async.complete_put(std::move(ticket));

  std::vector<AsyncStore::Ticket> gets;
  for (int i = 0; i < kOps; ++i)
    gets.push_back(async.submit_get("blob" + std::to_string(i)));
  for (int i = 0; i < kOps; ++i) {
    const auto got = async.complete_get(std::move(gets[i]));
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->size(), 100u + i);
  }

  const auto stats = pool.stats();
  EXPECT_EQ(stats.submitted, 2u * kOps);
  EXPECT_EQ(stats.completed, 2u * kOps);
  EXPECT_EQ(stats.inline_ops, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.batches, 0u);
}

TEST(AsyncStore, InFlightWindowIsBounded) {
  MemoryStore store;
  constexpr std::size_t kDepth = 4;
  StoreIoPool pool(StoreIoPool::Options{2, kDepth});
  AsyncStore async(store, &pool);
  std::vector<AsyncStore::Ticket> tickets;
  for (int i = 0; i < 64; ++i)
    tickets.push_back(
        async.submit_put("w" + std::to_string(i), Bytes(4096, 3)));
  for (auto& ticket : tickets) async.complete_put(std::move(ticket));
  const auto stats = pool.stats();
  // submit() blocks while the window is full, so the high-water mark can
  // never exceed the configured depth.
  EXPECT_LE(stats.max_in_flight, kDepth);
  EXPECT_GT(stats.max_in_flight, 0u);
  EXPECT_LE(stats.max_queue_depth, kDepth);
  EXPECT_EQ(store.list().size(), 64u);
}

TEST(AsyncStore, ErrorsSurfaceAtCompletion) {
  FailingStore store;
  StoreIoPool pool(StoreIoPool::Options{2, 8});
  AsyncStore async(store, &pool);
  auto ticket = async.submit_put("doomed", to_bytes("x"));
  EXPECT_THROW(async.complete_put(std::move(ticket)), StorageError);
  EXPECT_EQ(pool.stats().failed, 1u);
  // A missing blob is not an error: nullopt, like the synchronous get.
  EXPECT_EQ(async.complete_get(async.submit_get("absent")), std::nullopt);
}

TEST(AsyncStore, ModeledLatencyChargedForMemoryBackedOnly) {
  TestRng rng(7);
  sgx::SgxPlatform platform(rng);

  MemoryStore memory;
  {
    StoreIoPool pool(StoreIoPool::Options{2, 8}, &platform);
    AsyncStore async(memory, &pool);
    for (int i = 0; i < 4; ++i)
      async.complete_put(async.submit_put("m" + std::to_string(i), Bytes(8, 1)));
  }
  const auto after_memory = platform.stats_snapshot();
  EXPECT_EQ(after_memory.store_ops, 4u);
  EXPECT_GE(after_memory.charged_ns,
            4u * platform.cost_model().store_op_ns);

  // A device-backed store carries its own physical latency: not charged.
  const auto dir = std::filesystem::temp_directory_path() /
                   ("seg_async_disk_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  {
    DiskStore disk(dir.string());
    StoreIoPool pool(StoreIoPool::Options{2, 8}, &platform);
    AsyncStore async(disk, &pool);
    for (int i = 0; i < 4; ++i)
      async.complete_put(async.submit_put("d" + std::to_string(i), Bytes(8, 2)));
  }
  std::filesystem::remove_all(dir);
  EXPECT_EQ(platform.stats_snapshot().store_ops, 4u);
}

}  // namespace
}  // namespace seg::store
