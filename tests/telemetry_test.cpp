// Observability layer (DESIGN.md §8): metrics registry correctness under
// concurrency, trace-span accounting, the kStats wire round-trip, the
// pump-error satellite counters, and the no-secrets export guarantee.
#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "fs/records.h"
#include "segshare_test_util.h"
#include "telemetry/exporter.h"
#include "telemetry/registry.h"
#include "telemetry/trace.h"

namespace seg {
namespace {

using testutil::Rig;

// ---------------------------------------------------------------- registry

TEST(Registry, CountersGaugesHistogramsAcrossThreads) {
  telemetry::Registry registry;
  constexpr int kThreads = 8;
  constexpr std::uint64_t kOpsEach = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      // Registration races with other threads (mutex-guarded); recording
      // is lock-free relaxed atomics.
      telemetry::Counter& shared = registry.counter("test.shared");
      telemetry::Gauge& own =
          registry.gauge("test.thread_" + std::to_string(t));
      telemetry::Histogram& hist = registry.histogram("test.latency");
      for (std::uint64_t i = 0; i < kOpsEach; ++i) {
        shared.add();
        own.set(i);
        hist.record(i % 1000);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  const telemetry::Snapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("test.shared"), kThreads * kOpsEach);
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(snap.gauge("test.thread_" + std::to_string(t)), kOpsEach - 1);
  const auto& hist = snap.histograms.at("test.latency");
  EXPECT_EQ(hist.count, kThreads * kOpsEach);
  EXPECT_EQ(hist.max, 999u);
}

TEST(Registry, RejectsNamesOutsideMetricCharset) {
  telemetry::Registry registry;
  // The structural sanitization rule: request-derived strings (paths,
  // group names, '/'-or-space-bearing data) cannot become metric names.
  EXPECT_THROW(registry.counter("/docs/report.pdf"), Error);
  EXPECT_THROW(registry.gauge("group name"), Error);
  EXPECT_THROW(registry.histogram(""), Error);
  EXPECT_THROW(registry.set_note("bad\nname", "x"), Error);
  EXPECT_FALSE(telemetry::Registry::valid_metric_name("a/b"));
  EXPECT_TRUE(telemetry::Registry::valid_metric_name("enclave.requests.GET"));
  EXPECT_NO_THROW(registry.counter("ok.name-1_x"));
}

TEST(Registry, HistogramPercentilesAndBuckets) {
  telemetry::Registry registry;
  telemetry::Histogram& hist =
      registry.histogram("test.h", {10, 100, 1000});
  for (std::uint64_t v : {1u, 5u, 50u, 500u, 5000u}) hist.record(v);
  const auto snap = registry.snapshot().histograms.at("test.h");
  EXPECT_EQ(snap.count, 5u);
  EXPECT_EQ(snap.sum, 5556u);
  EXPECT_EQ(snap.max, 5000u);
  ASSERT_EQ(snap.counts.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.counts[0], 2u);
  EXPECT_EQ(snap.counts[1], 1u);
  EXPECT_EQ(snap.counts[2], 1u);
  EXPECT_EQ(snap.counts[3], 1u);
  // Nearest-rank from buckets: the 3rd of 5 samples (50) lands in the
  // (10,100] bucket, reported as its upper bound; p99 falls in the
  // overflow bucket, which degrades to max.
  EXPECT_EQ(snap.percentile(50), 100u);
  EXPECT_EQ(snap.percentile(99), 5000u);
}

TEST(Registry, SnapshotWireRoundTripAndMerge) {
  telemetry::Registry registry;
  registry.counter("a.count").add(7);
  registry.gauge("b.depth").set(42);
  // The wire form reconstructs histograms over the default bounds (the
  // only ones the enclave exports), so use them here.
  registry.histogram("c.lat").record(55);
  registry.set_note("d.note", "last error: something went wrong");
  const telemetry::Snapshot snap = registry.snapshot();

  const telemetry::Snapshot back =
      telemetry::Snapshot::from_lines(snap.to_lines());
  EXPECT_EQ(back.counter("a.count"), 7u);
  EXPECT_EQ(back.gauge("b.depth"), 42u);
  ASSERT_TRUE(back.histograms.count("c.lat"));
  EXPECT_EQ(back.histograms.at("c.lat").count, 1u);
  EXPECT_EQ(back.histograms.at("c.lat").sum, 55u);
  EXPECT_EQ(back.histograms.at("c.lat").bounds,
            telemetry::default_latency_buckets_ns());
  EXPECT_EQ(back.histograms.at("c.lat").percentile(50),
            snap.histograms.at("c.lat").percentile(50));
  ASSERT_TRUE(back.notes.count("d.note"));
  EXPECT_EQ(back.notes.at("d.note"), "last error: something went wrong");

  // merge: counters add, gauges overwrite, equal-bounds histograms fold.
  telemetry::Snapshot merged = snap;
  merged.merge(back);
  EXPECT_EQ(merged.counter("a.count"), 14u);
  EXPECT_EQ(merged.gauge("b.depth"), 42u);
  EXPECT_EQ(merged.histograms.at("c.lat").count, 2u);

  // JSON form parses as an object with all three metric kinds.
  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"a.count\""), std::string::npos);
  EXPECT_NE(json.find("\"b.depth\""), std::string::npos);
  EXPECT_NE(json.find("\"c.lat\""), std::string::npos);
}

// ------------------------------------------------------------------ traces

TEST(Traces, SegmentSumsMatchEndToEndLatency) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", rig.rng().bytes(64 << 10)).ok());
  ASSERT_TRUE(alice.get_file("/f").first.ok());

  const auto traces = rig.enclave().recent_traces();
  ASSERT_FALSE(traces.empty());
  bool saw_crypto = false, saw_store = false;
  std::size_t with_status = 0;
  for (const auto& span : traces) {
    EXPECT_GT(span.request_id, 0u);
    // A client-visible PUT is two spans (START + END) but one response,
    // so only the END span carries a status.
    if (span.has_status) ++with_status;
    else EXPECT_EQ(span.verb, static_cast<std::uint8_t>(proto::Verb::kPutFile));
    // kHandler is the unattributed remainder, so the segments excluding
    // queue wait (which precedes the span) sum to the span's wall time
    // exactly — unless clock granularity made the measured segments
    // overshoot, in which case the sum may exceed it slightly.
    std::uint64_t measured = 0;
    for (std::size_t s = 0; s < telemetry::kSegmentCount; ++s)
      if (s != static_cast<std::size_t>(telemetry::Segment::kQueueWait))
        measured += span.real_ns[s];
    EXPECT_GE(measured, span.total_real_ns);
    EXPECT_LE(measured, span.total_real_ns + 2'000'000u);  // 2 ms slack
    saw_crypto |= span.segment_real(telemetry::Segment::kCrypto) > 0;
    saw_store |= span.segment_real(telemetry::Segment::kStoreIo) > 0;
    // Modeled time: every request crosses the boundary at least twice.
    EXPECT_GT(span.segment_sim(telemetry::Segment::kTransition), 0u);
  }
  EXPECT_TRUE(saw_crypto);
  EXPECT_TRUE(saw_store);
  EXPECT_EQ(with_status, 2u);  // one PUT response + one GET response
}

TEST(Traces, RingBufferKeepsMostRecent) {
  core::EnclaveConfig config;
  config.telemetry_trace_ring = 4;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  for (int i = 0; i < 6; ++i)
    ASSERT_TRUE(alice.get_file("/nope" + std::to_string(i)).first.status ==
                proto::Status::kNotFound);
  const auto traces = rig.enclave().recent_traces();
  EXPECT_EQ(traces.size(), 4u);
  // Oldest-first ordering with monotonically assigned ids.
  for (std::size_t i = 1; i < traces.size(); ++i)
    EXPECT_GT(traces[i].request_id, traces[i - 1].request_id);
}

// ------------------------------------------------------------------ kStats

TEST(Stats, RoundTripReconcilesWithEnclaveCounters) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/dir/").ok());
  ASSERT_TRUE(alice.put_file("/dir/a", to_bytes("one")).ok());
  ASSERT_TRUE(alice.put_file("/dir/b", to_bytes("two")).ok());
  ASSERT_TRUE(alice.get_file("/dir/a").first.ok());
  ASSERT_TRUE(alice.get_file("/dir/b").first.ok());
  ASSERT_TRUE(alice.get_file("/dir/a").first.ok());

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  // The snapshot is built before the STATS response is sent, so it covers
  // exactly the six client-visible operations above plus the STATS
  // request itself.
  EXPECT_EQ(snap.counter("enclave.requests.MKCOL"), 1u);
  EXPECT_EQ(snap.counter("enclave.requests.PUT"), 2u);
  EXPECT_EQ(snap.counter("enclave.requests.GET"), 3u);
  EXPECT_EQ(snap.counter("enclave.requests.STATS"), 1u);
  EXPECT_EQ(snap.counter("enclave.requests"), 7u);
  EXPECT_EQ(snap.counter("enclave.responses"), 6u);
  EXPECT_EQ(snap.counter("enclave.responses.OK"), 6u);
  EXPECT_GT(snap.counter("enclave.handshake_messages"), 0u);
  EXPECT_GT(snap.counter("enclave.bytes_in"), 0u);
  EXPECT_GT(snap.counter("enclave.bytes_out"), 0u);
  EXPECT_EQ(snap.gauge("enclave.connections"), 1u);
  // SGX accounting folded in as gauges (switchless mode replaces ecalls
  // with switchless calls, so check their sum).
  EXPECT_GT(snap.gauge("sgx.ecalls") + snap.gauge("sgx.switchless_calls"),
            0u);
  EXPECT_GT(snap.gauge("sgx.charged_ns"), 0u);
  // Untrusted server registry merged into the same export.
  EXPECT_GT(snap.counter("server.pump.rounds"), 0u);
  EXPECT_GT(snap.counter("server.pump.dispatched"), 0u);
  EXPECT_EQ(snap.counter("server.pump.errors"), 0u);

  // Latency histograms saw every traced request (PUT = two spans).
  ASSERT_TRUE(snap.histograms.count("enclave.request_real_ns"));
  EXPECT_EQ(snap.histograms.at("enclave.request_real_ns").count, 8u);
  EXPECT_EQ(snap.gauge("enclave.traces_recorded"), 8u);

  // The wire snapshot agrees with what the enclave reports in-process
  // (counters are monotonic; the in-process read happens later so it may
  // only have grown — the pre-STATS ones must match exactly).
  const telemetry::Snapshot direct = rig.enclave().telemetry_snapshot();
  EXPECT_EQ(direct.counter("enclave.requests.GET"),
            snap.counter("enclave.requests.GET"));
  EXPECT_EQ(direct.counter("enclave.requests.PUT"),
            snap.counter("enclave.requests.PUT"));
  EXPECT_GE(direct.counter("enclave.responses"),
            snap.counter("enclave.responses"));
}

TEST(Stats, ReconcilesCacheDedupAndSwitchlessCounters) {
  core::EnclaveConfig config;
  config.metadata_cache_bytes = 256 << 10;
  config.deduplication = true;
  config.service_threads = 2;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(8 << 10);
  ASSERT_TRUE(alice.put_file("/a", payload).ok());
  ASSERT_TRUE(alice.put_file("/b", payload).ok());  // same bytes: dedup hit
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(alice.get_file("/a").first.ok());

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  // The gauges in the export are the same numbers the in-process
  // accessors report (no further operations ran in between).
  const auto cache = rig.enclave().cache_stats();
  EXPECT_EQ(snap.gauge("cache.headers.hits"), cache.headers.hits);
  EXPECT_EQ(snap.gauge("cache.headers.misses"), cache.headers.misses);
  EXPECT_EQ(snap.gauge("cache.dedup_index.hits"), cache.dedup_index.hits);
  EXPECT_EQ(snap.gauge("tfm.dedup.hits"), 1u);
  EXPECT_EQ(snap.gauge("tfm.dedup.blobs"), 1u);
  EXPECT_GE(snap.gauge("tfm.dedup.refs"), 2u);
  // Requests were serviced by the switchless worker pool.
  EXPECT_GT(snap.gauge("sgx.switchless.tasks_executed"), 0u);
}

TEST(Stats, ExportsContentCacheAndCryptoPoolGauges) {
  core::EnclaveConfig config;
  config.crypto_threads = 2;
  config.content_cache_bytes = 1 << 20;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(64 << 10);  // multi-chunk
  ASSERT_TRUE(alice.put_file("/a", payload).ok());
  ASSERT_TRUE(alice.get_file("/a").first.ok());  // cold: misses, fills
  ASSERT_TRUE(alice.get_file("/a").first.ok());  // warm: hits

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  EXPECT_GT(snap.gauge("pfs.content_cache.hits"), 0u);
  EXPECT_GT(snap.gauge("pfs.content_cache.misses"), 0u);
  EXPECT_GT(snap.gauge("pfs.content_cache.bytes"), 0u);
  EXPECT_EQ(snap.gauge("pfs.content_cache.budget_bytes"), 1u << 20);
  EXPECT_EQ(snap.gauge("pfs.crypto_pool.threads"), 2u);
  EXPECT_GT(snap.gauge("pfs.crypto_pool.tasks"), 0u);
  EXPECT_GT(snap.gauge("pfs.crypto_pool.queue_depth"), 0u);
  // The cached chunks are charged against the EPC budget model.
  EXPECT_GE(snap.gauge("sgx.epc_resident_bytes"),
            snap.gauge("pfs.content_cache.bytes"));

  // Serial deployments export the gauges as zeros (pool disabled, cache
  // off) rather than omitting them — dashboards keep a stable schema.
  Rig serial;
  auto& bob = serial.connect("bob");
  ASSERT_TRUE(bob.put_file("/b", to_bytes("x")).ok());
  const auto [response2, snap2] = bob.stats();
  ASSERT_TRUE(response2.ok());
  EXPECT_EQ(snap2.gauge("pfs.content_cache.hits"), 0u);
  EXPECT_EQ(snap2.gauge("pfs.content_cache.budget_bytes"), 0u);
  EXPECT_EQ(snap2.gauge("pfs.crypto_pool.threads"), 0u);
}

TEST(Stats, ExportsAsyncStoreIoGauges) {
  core::EnclaveConfig config;
  config.store_io_threads = 2;
  config.store_queue_depth = 8;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(64 << 10);  // multi-chunk
  ASSERT_TRUE(alice.put_file("/a", payload).ok());
  ASSERT_TRUE(alice.get_file("/a").first.ok());

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(snap.gauge("store.async.threads"), 2u);
  EXPECT_GT(snap.gauge("store.async.submitted"), 0u);
  EXPECT_EQ(snap.gauge("store.async.submitted"),
            snap.gauge("store.async.completed"));
  EXPECT_EQ(snap.gauge("store.async.failed"), 0u);
  EXPECT_EQ(snap.gauge("store.async.inline_ops"), 0u);
  EXPECT_GT(snap.gauge("store.async.batches"), 0u);
  EXPECT_LE(snap.gauge("store.async.max_in_flight"), 8u);
  // The rig's stores are memory-backed, so every pool-completed op is
  // charged the cost model's disk-class store latency.
  EXPECT_EQ(snap.gauge("sgx.store_ops"), snap.gauge("store.async.completed") -
                                             snap.gauge("store.async.inline_ops"));
  EXPECT_GT(snap.gauge("sgx.charged_ns"), 0u);

  // Synchronous deployments export the schema as zeros.
  Rig serial;
  auto& bob = serial.connect("bob");
  ASSERT_TRUE(bob.put_file("/b", to_bytes("x")).ok());
  const auto [response2, snap2] = bob.stats();
  ASSERT_TRUE(response2.ok());
  EXPECT_EQ(snap2.gauge("store.async.threads"), 0u);
  EXPECT_EQ(snap2.gauge("store.async.submitted"), 0u);
  EXPECT_EQ(snap2.gauge("sgx.store_ops"), 0u);
}

TEST(Stats, ExportsAmapGauges) {
  core::EnclaveConfig config;
  config.deduplication = true;
  config.paged_metadata = true;
  config.amap_cache_bytes = 64 << 10;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(8 << 10);
  ASSERT_TRUE(alice.put_file("/a", payload).ok());
  ASSERT_TRUE(alice.put_file("/b", payload).ok());  // refcount bump: one page
  ASSERT_TRUE(alice.get_file("/a").first.ok());

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(snap.gauge("amap.enabled"), 1u);
  EXPECT_EQ(snap.gauge("amap.dedup.entries"), 1u);  // one refcount record
  EXPECT_GT(snap.gauge("amap.dedup.pages"), 0u);
  EXPECT_GT(snap.gauge("amap.dedup.writeback_pages"), 0u);
  EXPECT_GT(snap.gauge("amap.dedup.writeback_batches"), 0u);
  EXPECT_EQ(snap.gauge("amap.dedup.dirty_pages"), 0u);  // flushed at barriers
  EXPECT_GT(snap.gauge("amap.dedup.table_bytes"), 0u);
  EXPECT_GT(snap.gauge("amap.meta.entries"), 0u);  // object cold tier filled
  EXPECT_GT(snap.gauge("amap.meta.budget_bytes"), 0u);
  // The per-map stats exported are the in-process accessors' numbers.
  const auto amap = rig.enclave().file_manager().amap_stats();
  EXPECT_EQ(snap.gauge("amap.dedup.page_hits"), amap.dedup.page_hits);
  EXPECT_EQ(snap.gauge("amap.meta.page_misses"), amap.meta.page_misses);
  // Amap pages count against the simulated EPC via the residency model.
  EXPECT_GE(snap.gauge("sgx.epc_resident_bytes"),
            snap.gauge("amap.dedup.resident_bytes") +
                snap.gauge("amap.dedup.table_bytes"));

  // Non-paged deployments export the schema as zeros, not gaps.
  Rig legacy;
  auto& bob = legacy.connect("bob");
  ASSERT_TRUE(bob.put_file("/b", to_bytes("x")).ok());
  const auto [response2, snap2] = bob.stats();
  ASSERT_TRUE(response2.ok());
  EXPECT_EQ(snap2.gauge("amap.enabled"), 0u);
  EXPECT_EQ(snap2.gauge("amap.dedup.entries"), 0u);
  EXPECT_EQ(snap2.gauge("amap.meta.entries"), 0u);
}

TEST(Stats, ExportsAmapJournalAndCompactionGauges) {
  core::EnclaveConfig config;
  config.deduplication = true;
  config.paged_metadata = true;
  config.amap_journal_bytes = 64 << 10;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(8 << 10);
  ASSERT_TRUE(alice.put_file("/a", payload).ok());  // first barrier checkpoints
  ASSERT_TRUE(alice.put_file("/b", payload).ok());  // later barriers journal
  ASSERT_TRUE(alice.put_file("/c", payload).ok());
  ASSERT_TRUE(alice.add_user_to_group("bob", "team").ok());

  const auto [response, snap] = alice.stats();
  ASSERT_TRUE(response.ok());
  EXPECT_GT(snap.gauge("amap.dedup.journal.appends"), 0u)
      << "dedup barriers must group-commit journal records";
  EXPECT_GT(snap.gauge("amap.dedup.journal.bytes"), 0u);
  EXPECT_GT(snap.gauge("amap.dedup.journal.checkpoints"), 0u);
  EXPECT_GT(snap.gauge("amap.group.journal.appends"), 0u)
      << "membership barriers must group-commit journal records";
  EXPECT_GT(snap.gauge("amap.group.entries"), 0u);
  // Aggregates fold the tiers.
  EXPECT_EQ(snap.gauge("amap.journal.appends"),
            snap.gauge("amap.dedup.journal.appends") +
                snap.gauge("amap.meta.journal.appends") +
                snap.gauge("amap.group.journal.appends"));
  EXPECT_EQ(snap.gauge("amap.compaction.runs"), 0u);

  // Compaction surfaces in the same schema.
  rig.enclave().file_manager().compact_paged_metadata();
  const auto [response2, snap2] = alice.stats();
  ASSERT_TRUE(response2.ok());
  EXPECT_GT(snap2.gauge("amap.compaction.runs"), 0u);
  EXPECT_GT(snap2.gauge("amap.dedup.compaction.runs"), 0u);
  EXPECT_EQ(snap2.gauge("amap.dedup.journal.records"), 0u)
      << "a compaction checkpoint retires the journal";
  EXPECT_GE(snap2.gauge("amap.compaction.reclaimed_pages"), 0u);
}

TEST(Stats, AmapGaugeNamesStayInMetricCharsetAndLeakNothing) {
  // The amap layer must not smuggle request-derived strings (logical
  // paths live inside amap keys!) into metric names or the export.
  core::EnclaveConfig config;
  config.deduplication = true;
  config.paged_metadata = true;
  Rig rig(config);
  auto& user = rig.connect("zz-secret-user");
  ASSERT_TRUE(
      user.put_file("/zz-secret-path", to_bytes("zz-secret-content")).ok());
  ASSERT_TRUE(
      user.put_file("/zz-secret-copy", to_bytes("zz-secret-content")).ok());
  ASSERT_TRUE(user.get_file("/zz-secret-path").first.ok());

  const auto [response, snap] = user.stats();
  ASSERT_TRUE(response.ok());
  bool saw_amap = false;
  for (const auto& [name, value] : snap.gauges) {
    EXPECT_TRUE(telemetry::Registry::valid_metric_name(name)) << name;
    if (name.rfind("amap.", 0) == 0) saw_amap = true;
  }
  EXPECT_TRUE(saw_amap);
  for (const std::string& line : snap.to_lines())
    EXPECT_EQ(line.find("zz-secret"), std::string::npos) << line;
  EXPECT_EQ(snap.to_json().find("zz-secret"), std::string::npos);
}

TEST(Stats, ExportNeverContainsRequestData) {
  Rig rig;
  auto& secret_user = rig.connect("zz-secret-user");
  ASSERT_TRUE(
      secret_user.put_file("/zz-secret-path", to_bytes("zz-secret-content"))
          .ok());
  ASSERT_TRUE(secret_user
                  .add_user_to_group("zz-secret-member", "zz-secret-group")
                  .ok());
  ASSERT_TRUE(
      secret_user.set_permission("/zz-secret-path", "zz-secret-group",
                                 fs::kPermRead)
          .ok());

  const auto [response, snap] = secret_user.stats();
  ASSERT_TRUE(response.ok());
  for (const std::string& line : snap.to_lines())
    EXPECT_EQ(line.find("zz-secret"), std::string::npos) << line;
  EXPECT_EQ(snap.to_json().find("zz-secret"), std::string::npos);
  // The in-enclave registry export is covered by the same guarantee.
  EXPECT_EQ(rig.enclave().telemetry_snapshot().to_json().find("zz-secret"),
            std::string::npos);
}

TEST(Stats, StatsVerbIsReadOnlyAndRepeatable) {
  Rig rig;
  auto& alice = rig.connect("alice");
  const auto first = alice.stats();
  ASSERT_TRUE(first.first.ok());
  const auto second = alice.stats();
  ASSERT_TRUE(second.first.ok());
  // Counters are monotonic between exports.
  EXPECT_GT(second.second.counter("enclave.requests.STATS"),
            first.second.counter("enclave.requests.STATS"));
}

// -------------------------------------------------- pump-error accounting

TEST(PumpErrors, CountedAndExposedNotSilentlyDropped) {
  Rig rig;
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());

  // Inject garbage on both client->server directions: the TLS record
  // layer rejects it, every connection in the round fails. The first
  // error rethrows (old contract), the second used to vanish — now both
  // are accounted.
  rig.channel(0).a().send(to_bytes("garbage-not-a-tls-record"));
  rig.channel(1).a().send(to_bytes("more-garbage"));
  EXPECT_THROW(rig.server().pump(), std::exception);

  const telemetry::Snapshot snap = rig.server().registry().snapshot();
  EXPECT_EQ(snap.counter("server.pump.errors"), 2u);
  EXPECT_EQ(snap.counter("server.pump.suppressed_errors"), 1u);
  EXPECT_EQ(snap.gauge("server.pump.last_error_connection"), 2u);
  ASSERT_TRUE(snap.notes.count("server.pump.last_error"));
  EXPECT_FALSE(snap.notes.at("server.pump.last_error").empty());
}

TEST(PumpErrors, PumpConnectionRethrowsButStillCounts) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  rig.channel(0).a().send(to_bytes("garbage-not-a-tls-record"));
  EXPECT_THROW(rig.server().pump_connection(1), std::exception);
  const telemetry::Snapshot snap = rig.server().registry().snapshot();
  EXPECT_EQ(snap.counter("server.pump.errors"), 1u);
  EXPECT_EQ(snap.counter("server.pump.suppressed_errors"), 0u);
}

// ------------------------------------------ distributed tracing (§10)

TEST(DistributedTracing, ContextLineRoundTrips) {
  TestRng rng(7);
  telemetry::TraceSpan span;
  span.request_id = 42;
  span.context = telemetry::make_trace_context(rng);
  span.verb = static_cast<std::uint8_t>(proto::Verb::kPutFile);
  span.status = 0;
  span.has_status = true;
  span.total_real_ns = 123456;
  span.total_sim_ns = 7890;
  span.real_ns[static_cast<std::size_t>(telemetry::Segment::kCrypto)] = 777;
  span.child(telemetry::ChildKind::kStoreIo) = {111, 22, 3};

  const auto parsed = telemetry::trace_from_line(telemetry::trace_to_line(span));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->context, span.context);
  EXPECT_EQ(parsed->request_id, 42u);
  EXPECT_EQ(parsed->total_real_ns, 123456u);
  EXPECT_EQ(parsed->segment_real(telemetry::Segment::kCrypto), 777u);
  EXPECT_EQ(parsed->child(telemetry::ChildKind::kStoreIo).real_ns, 111u);
  EXPECT_EQ(parsed->child(telemetry::ChildKind::kStoreIo).tasks, 3u);

  // Malformed lines are rejected, not mis-parsed.
  EXPECT_FALSE(telemetry::trace_from_line(""));
  EXPECT_FALSE(telemetry::trace_from_line("x - 0 0 1 -"));
  EXPECT_FALSE(telemetry::trace_from_line("t zz 0 0 1 - total=1:2"));
  EXPECT_FALSE(telemetry::trace_from_line("t - 0 0 1 - bogus=1:2"));
}

TEST(DistributedTracing, ClientTraceIdSurvivesThreadedPoolsToKTraces) {
  // The acceptance scenario: every pool the request fans out over is
  // threaded, and the client's trace id must come back unchanged when the
  // span is fetched through the kTraces verb.
  core::EnclaveConfig config;
  config.service_threads = 4;
  config.crypto_threads = 4;
  config.store_io_threads = 2;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.tracing());

  ASSERT_TRUE(alice.put_file("/traced", rig.rng().bytes(128 << 10)).ok());
  ASSERT_TRUE(alice.last_trace().has_value());
  const auto put_trace = *alice.last_trace();
  ASSERT_TRUE(put_trace.context.valid());
  EXPECT_EQ(put_trace.verb, proto::Verb::kPutFile);

  ASSERT_TRUE(alice.get_file("/traced").first.ok());
  const auto get_trace = *alice.last_trace();
  EXPECT_NE(get_trace.context, put_trace.context);  // fresh per request
  EXPECT_GT(get_trace.e2e_ns(), 0u);

  const auto [response, spans] = alice.traces();
  ASSERT_TRUE(response.ok());
  // Each traced request appears exactly once under its client trace id
  // (the PUT's START span is the one that carries the wire context; its
  // END span inherits the same context from PutState).
  std::size_t put_spans = 0, get_spans = 0;
  const telemetry::TraceSpan* get_span = nullptr;
  for (const auto& span : spans) {
    if (span.context == put_trace.context) ++put_spans;
    if (span.context == get_trace.context) {
      ++get_spans;
      get_span = &span;
    }
  }
  EXPECT_EQ(put_spans, 2u);  // START + END of the streamed upload
  ASSERT_EQ(get_spans, 1u);

  // Client/server reconciliation: the server-side span is contained in
  // the client's end-to-end window (the difference is wire + pump time
  // outside the enclave, which can't be negative).
  ASSERT_NE(get_span, nullptr);
  EXPECT_EQ(get_span->verb, static_cast<std::uint8_t>(proto::Verb::kGetFile));
  EXPECT_LE(get_span->total_real_ns, get_trace.e2e_ns());
  // And the span's own segment arithmetic still reconciles: non-queue
  // segments sum to the wall time (kHandler is the remainder; clock
  // granularity may overshoot slightly).
  std::uint64_t measured = 0;
  for (std::size_t s = 0; s < telemetry::kSegmentCount; ++s)
    if (s != static_cast<std::size_t>(telemetry::Segment::kQueueWait))
      measured += get_span->real_ns[s];
  EXPECT_GE(measured, get_span->total_real_ns);
  EXPECT_LE(measured, get_span->total_real_ns + 2'000'000u);
}

TEST(DistributedTracing, LegacyClientRoundTripsWithoutContext) {
  Rig rig;
  auto& alice = rig.connect("alice");
  alice.set_tracing(false);
  ASSERT_TRUE(alice.put_file("/legacy", to_bytes("old-school")).ok());
  auto [response, body] = alice.get_file("/legacy");
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(body, to_bytes("old-school"));
  EXPECT_FALSE(alice.last_trace().has_value());
  // Server-side spans for untraced requests carry no context.
  for (const auto& span : rig.enclave().recent_traces())
    EXPECT_FALSE(span.context.valid());
}

TEST(DistributedTracing, DataFramesFoldIntoEndSpanAndDropsAreCounted) {
  core::EnclaveConfig config;
  config.telemetry_trace_ring = 4;
  Rig rig(config);
  auto& alice = rig.connect("alice");

  // A multi-chunk streamed PUT: the DATA frames carry no request id, so
  // their time must fold into the END span's data_frames child rather
  // than vanish from the ring.
  const Bytes big = rig.rng().bytes(256 << 10);
  ASSERT_TRUE(alice.put_file("/big", big).ok());
  bool saw_fold = false;
  for (const auto& span : rig.enclave().recent_traces()) {
    const auto& child = span.child(telemetry::ChildKind::kDataFrames);
    if (child.tasks == 0) continue;
    saw_fold = true;
    EXPECT_GT(child.real_ns, 0u);
    EXPECT_EQ(span.verb, static_cast<std::uint8_t>(proto::Verb::kPutFile));
    EXPECT_TRUE(span.has_status);  // the END span, not the START span
  }
  EXPECT_TRUE(saw_fold);

  // Overflow the 4-entry ring; evictions surface as the dropped counter
  // instead of disappearing silently.
  for (int i = 0; i < 8; ++i)
    ASSERT_EQ(alice.get_file("/nope" + std::to_string(i)).first.status,
              proto::Status::kNotFound);
  const telemetry::Snapshot snap = rig.enclave().telemetry_snapshot();
  EXPECT_GT(snap.counter("telemetry.trace.dropped"), 0u);
  EXPECT_EQ(snap.counter("telemetry.trace.dropped") +
                rig.enclave().recent_traces().size(),
            snap.gauge("enclave.traces_recorded"));
}

// ------------------------------------------------- Prometheus exporter

TEST(Exporter, OutputStaysInPrometheusCharsetAndLeaksNoRequestData) {
  Rig rig;
  auto& alice = rig.connect("alice");
  const std::string secret_path = "/S3CR3T-dir/S3CR3T-file.txt";
  ASSERT_TRUE(alice.mkdir("/S3CR3T-dir/").ok());
  ASSERT_TRUE(alice.put_file(secret_path, to_bytes("S3CR3T-body")).ok());
  ASSERT_TRUE(alice.add_user_to_group("bob", "S3CR3T-group").ok());

  const std::string text =
      telemetry::to_prometheus_text(rig.enclave().telemetry_snapshot());
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
  // No request-derived strings anywhere in the exposition.
  EXPECT_EQ(text.find("S3CR3T"), std::string::npos);
  // Every sample line: prefixed Prometheus-charset name, optional labels,
  // numeric value.
  std::size_t samples = 0;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') continue;
    ++samples;
    EXPECT_EQ(line.rfind("segshare_", 0), 0u) << line;
    const std::size_t name_end = line.find_first_of("{ ");
    ASSERT_NE(name_end, std::string::npos) << line;
    for (const char c : line.substr(0, name_end))
      EXPECT_TRUE((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':')
          << line;
  }
  EXPECT_GT(samples, 0u);

  // A name outside the registry charset is dropped, never escaped into
  // the output (defense in depth — the registry rejects such names at
  // registration, so this only triggers on hand-built snapshots).
  telemetry::Snapshot hostile;
  hostile.counters["ok.name"] = 1;
  hostile.counters["evil{label=\"/etc/passwd\"}"] = 2;
  const std::string rendered = telemetry::to_prometheus_text(hostile);
  EXPECT_NE(rendered.find("segshare_ok_name_total"), std::string::npos);
  EXPECT_EQ(rendered.find("evil"), std::string::npos);
  EXPECT_EQ(rendered.find("passwd"), std::string::npos);
}

TEST(Exporter, HistogramSeriesAreCumulativeAndCloseWithInf) {
  telemetry::Registry registry;
  auto& hist = registry.histogram("lat.ns");
  for (const std::uint64_t v : {100u, 200u, 300u, 100'000u, 5'000'000u})
    hist.record(v);
  const std::string text = telemetry::to_prometheus_text(registry.snapshot());

  // Bucket counts parse out monotone non-decreasing, ending at +Inf with
  // the total observation count; _sum and _count close the family.
  std::istringstream lines(text);
  std::string line;
  std::uint64_t last = 0;
  bool saw_inf = false;
  while (std::getline(lines, line)) {
    if (line.rfind("segshare_lat_ns_bucket", 0) != 0) continue;
    const std::size_t space = line.rfind(' ');
    const std::uint64_t count = std::stoull(line.substr(space + 1));
    EXPECT_GE(count, last) << line;
    last = count;
    saw_inf = line.find("le=\"+Inf\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_inf);
  EXPECT_EQ(last, 5u);
  EXPECT_NE(text.find("segshare_lat_ns_count 5"), std::string::npos);
  EXPECT_NE(text.find("segshare_lat_ns_sum"), std::string::npos);
}

TEST(Exporter, TailPercentilesResolveAtMicrosecondGrain) {
  // The HDR log-linear buckets keep relative error ≤ 12.5%: a swarm of
  // ~60 µs observations with a few 8 ms stragglers must report a p50 near
  // 60 µs and a p999 near 8 ms — with the old power-of-two-ish coarse
  // buckets both collapsed into the same wide bin at the top.
  telemetry::Registry registry;
  auto& hist = registry.histogram("tail.ns");
  for (int i = 0; i < 996; ++i) hist.record(60'000);
  for (int i = 0; i < 4; ++i) hist.record(8'000'000);
  const auto snap = registry.snapshot().histograms.at("tail.ns");
  EXPECT_NEAR(static_cast<double>(snap.percentile(50)), 60'000.0,
              60'000.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(snap.percentile(99)), 60'000.0,
              60'000.0 * 0.125);
  EXPECT_NEAR(static_cast<double>(snap.percentile(99.9)), 8'000'000.0,
              8'000'000.0 * 0.125);
}

}  // namespace
}  // namespace seg
