// Tests for the SeGShare extensions (§V): deduplication, filename hiding
// on/off, per-file rollback protection, whole-file-system rollback
// guards, replication, and backup restore.
#include <gtest/gtest.h>

#include "common/error.h"
#include "fs/records.h"
#include "segshare_test_util.h"

namespace seg {
namespace {

using testutil::Rig;

core::EnclaveConfig dedup_config() {
  core::EnclaveConfig config;
  config.deduplication = true;
  return config;
}

// §V-D tests manipulate specific physical blobs, so they run with name
// hiding off (physical names are then "f:<path>" / "h:<path>").
core::EnclaveConfig rollback_config(
    core::FsRollbackGuard guard = core::FsRollbackGuard::kProtectedMemory) {
  core::EnclaveConfig config;
  config.hide_names = false;
  config.rollback_protection = true;
  config.fs_guard = guard;
  return config;
}

// -------------------------------------------------------------- dedup ---

TEST(Dedup, SingleCopyForIdenticalContent) {
  Rig rig(dedup_config());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  const Bytes payload = rig.rng().bytes(100'000);

  ASSERT_TRUE(alice.put_file("/a/copy1", payload).ok() ||
              alice.mkdir("/a/").ok());
  ASSERT_TRUE(alice.put_file("/a/copy1", payload).ok());
  const std::uint64_t after_first = rig.dedup_store().total_bytes();
  ASSERT_TRUE(bob.put_file("/copy2", payload).ok());
  const std::uint64_t after_second = rig.dedup_store().total_bytes();

  // F9/P5: the second upload (different user, different group) adds no
  // second content copy — only index bookkeeping.
  EXPECT_LT(after_second - after_first, 10'000u);
  EXPECT_EQ(alice.get_file("/a/copy1").second, payload);
  EXPECT_EQ(bob.get_file("/copy2").second, payload);
}

TEST(Dedup, DistinctContentStoredSeparately) {
  Rig rig(dedup_config());
  auto& alice = rig.connect("alice");
  const Bytes a = rig.rng().bytes(50'000);
  const Bytes b = rig.rng().bytes(50'000);
  ASSERT_TRUE(alice.put_file("/a", a).ok());
  const auto after_a = rig.dedup_store().total_bytes();
  ASSERT_TRUE(alice.put_file("/b", b).ok());
  EXPECT_GT(rig.dedup_store().total_bytes(), after_a + 40'000u);
}

TEST(Dedup, RefcountGarbageCollection) {
  Rig rig(dedup_config());
  auto& alice = rig.connect("alice");
  const Bytes payload = rig.rng().bytes(60'000);
  ASSERT_TRUE(alice.put_file("/x", payload).ok());
  ASSERT_TRUE(alice.put_file("/y", payload).ok());
  const auto with_data = rig.dedup_store().total_bytes();
  ASSERT_TRUE(alice.remove("/x").ok());
  // Still referenced by /y: content stays.
  EXPECT_GT(rig.dedup_store().total_bytes(), with_data - 10'000);
  EXPECT_EQ(alice.get_file("/y").second, payload);
  ASSERT_TRUE(alice.remove("/y").ok());
  // Last reference gone: the copy is collected.
  EXPECT_LT(rig.dedup_store().total_bytes(), 10'000u);
}

TEST(Dedup, OverwriteMovesReference) {
  Rig rig(dedup_config());
  auto& alice = rig.connect("alice");
  const Bytes v1 = rig.rng().bytes(30'000);
  const Bytes v2 = rig.rng().bytes(30'000);
  ASSERT_TRUE(alice.put_file("/f", v1).ok());
  ASSERT_TRUE(alice.put_file("/f", v2).ok());
  EXPECT_EQ(alice.get_file("/f").second, v2);
  ASSERT_TRUE(alice.remove("/f").ok());
  EXPECT_LT(rig.dedup_store().total_bytes(), 10'000u);
}

TEST(Dedup, RevocationStillImmediateWithSharedCopy) {
  // §V-A: "the scheme also supports deduplication of data belonging to
  // different groups and immediate membership revocation without
  // re-encryption".
  Rig rig(dedup_config());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  const Bytes payload = rig.rng().bytes(10'000);
  ASSERT_TRUE(alice.put_file("/mine", payload).ok());
  ASSERT_TRUE(bob.put_file("/theirs", payload).ok());
  ASSERT_TRUE(alice.set_permission("/mine", "user:bob", fs::kPermRead).ok());
  EXPECT_TRUE(bob.get_file("/mine").first.ok());
  ASSERT_TRUE(alice.set_permission("/mine", "user:bob", fs::kPermNone).ok());
  EXPECT_EQ(bob.get_file("/mine").first.status, proto::Status::kForbidden);
  // Bob's own copy of the same bytes keeps working.
  EXPECT_EQ(bob.get_file("/theirs").second, payload);
}

// ------------------------------------------------------- name hiding ---

TEST(NameHiding, DisabledExposesNamespaceShape) {
  core::EnclaveConfig config;
  config.hide_names = false;
  Rig rig(config);
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/visible.txt", to_bytes("x")).ok());
  bool found = false;
  for (const auto& name : rig.content_store().list())
    found |= name.find("visible.txt") != std::string::npos;
  EXPECT_TRUE(found);  // contrast with Files.HiddenNamesLeakNoPaths
}

TEST(NameHiding, FlatPseudorandomNamespaceWhenEnabled) {
  Rig rig;  // hiding on by default
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.mkdir("/d/").ok());
  ASSERT_TRUE(alice.put_file("/d/f", to_bytes("x")).ok());
  for (const auto& name : rig.content_store().list()) {
    if (name.rfind("__segshare", 0) == 0) continue;  // bootstrap blobs
    // hex HMAC (64 chars) + Protected-FS suffix.
    EXPECT_GE(name.size(), 64u);
    EXPECT_EQ(name.find('/'), std::string::npos);
  }
  // Listing still works (paths live inside encrypted directory files).
  EXPECT_EQ(alice.list("/d/").listing, std::vector<std::string>{"/d/f"});
}

// --------------------------------------------- per-file rollback (§V-D) ---

class RollbackTest : public ::testing::Test {
 protected:
  RollbackTest() : rig_(rollback_config()) {}

  /// Snapshots every blob belonging to logical object `logical`
  /// (Protected-FS blobs "f:<logical>.*" and the hash header "h:<logical>").
  std::vector<std::string> blobs_of(const std::string& logical) {
    std::vector<std::string> result;
    for (const auto& name : rig_.content_store().list()) {
      if (name.rfind("f:" + logical + ".", 0) == 0 ||
          name == "h:" + logical)
        result.push_back(name);
    }
    return result;
  }

  Rig rig_;
};

TEST_F(RollbackTest, NormalOperationUnaffected) {
  auto& alice = rig_.connect("alice");
  ASSERT_TRUE(alice.mkdir("/d/").ok());
  ASSERT_TRUE(alice.put_file("/d/f", to_bytes("v1")).ok());
  ASSERT_TRUE(alice.put_file("/d/f", to_bytes("v2")).ok());
  EXPECT_EQ(alice.get_file("/d/f").second, to_bytes("v2"));
  ASSERT_TRUE(alice.move("/d/f", "/d/g").ok());
  EXPECT_EQ(alice.get_file("/d/g").second, to_bytes("v2"));
  ASSERT_TRUE(alice.remove("/d/g").ok());
  EXPECT_EQ(alice.list("/d/").listing.size(), 0u);
}

TEST_F(RollbackTest, IndividualFileRollbackDetected) {
  auto& alice = rig_.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("version 1")).ok());
  for (const auto& blob : blobs_of("/f")) rig_.content_store().snapshot_blob(blob);
  ASSERT_TRUE(alice.put_file("/f", to_bytes("version 2")).ok());
  // Roll back the file (content + its own hash header) but not the rest
  // of the tree — the parent bucket hash exposes the stale main hash.
  for (const auto& blob : blobs_of("/f")) rig_.content_store().rollback_blob(blob);
  const auto [resp, body] = alice.get_file("/f");
  EXPECT_EQ(resp.status, proto::Status::kError);
  EXPECT_NE(resp.message.find("rollback"), std::string::npos);
}

TEST_F(RollbackTest, ContentOnlyRollbackDetected) {
  auto& alice = rig_.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", Bytes(5000, 1)).ok());
  for (const auto& blob : blobs_of("/f"))
    if (blob.rfind("f:", 0) == 0) rig_.content_store().snapshot_blob(blob);
  ASSERT_TRUE(alice.put_file("/f", Bytes(5000, 2)).ok());
  for (const auto& blob : blobs_of("/f"))
    if (blob.rfind("f:", 0) == 0) rig_.content_store().rollback_blob(blob);
  // Chunk-level rollback is only detectable once the download is under
  // way, i.e. after the response header — the stream ends with an error
  // trailer the client raises as a typed error carrying the verdict.
  try {
    alice.get_file("/f");
    FAIL() << "rolled-back download must not succeed";
  } catch (const client::DownloadAbortedError& e) {
    EXPECT_EQ(e.response().status, proto::Status::kError);
  }
}

TEST_F(RollbackTest, AclRollbackDetected) {
  // The §V-D motivation: "an old member list could enable a user to
  // regain access" — same for ACLs: revive a revoked permission.
  auto& alice = rig_.connect("alice");
  auto& bob = rig_.connect("bob");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("secret")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermRead).ok());
  for (const auto& blob : blobs_of("/f.acl"))
    rig_.content_store().snapshot_blob(blob);
  ASSERT_TRUE(alice.set_permission("/f", "user:bob", fs::kPermNone).ok());
  for (const auto& blob : blobs_of("/f.acl"))
    rig_.content_store().rollback_blob(blob);
  // Bob's access must NOT come back.
  EXPECT_NE(bob.get_file("/f").first.status, proto::Status::kOk);
}

TEST_F(RollbackTest, WholeFsRollbackDetectedByGuard) {
  auto& alice = rig_.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v1")).ok());
  rig_.content_store().snapshot_all();
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v2")).ok());
  rig_.content_store().rollback_all();  // consistent full rollback
  // §V-E: the protected-memory guard holds the fresh root hash.
  EXPECT_EQ(alice.get_file("/f").first.status, proto::Status::kError);
}

TEST_F(RollbackTest, DeepTreeValidation) {
  auto& alice = rig_.connect("alice");
  ASSERT_TRUE(alice.mkdir("/a/").ok());
  ASSERT_TRUE(alice.mkdir("/a/b/").ok());
  ASSERT_TRUE(alice.mkdir("/a/b/c/").ok());
  ASSERT_TRUE(alice.put_file("/a/b/c/deep", to_bytes("v1")).ok());
  for (const auto& blob : blobs_of("/a/b/c/deep"))
    rig_.content_store().snapshot_blob(blob);
  ASSERT_TRUE(alice.put_file("/a/b/c/deep", to_bytes("v2")).ok());
  for (const auto& blob : blobs_of("/a/b/c/deep"))
    rig_.content_store().rollback_blob(blob);
  EXPECT_EQ(alice.get_file("/a/b/c/deep").first.status, proto::Status::kError);
  // An untouched sibling file elsewhere still validates.
  ASSERT_TRUE(alice.put_file("/a/ok", to_bytes("fine")).ok());
  EXPECT_EQ(alice.get_file("/a/ok").second, to_bytes("fine"));
}

TEST(RollbackCounter, CounterGuardDetectsWholeFsRollback) {
  Rig rig(rollback_config(core::FsRollbackGuard::kMonotonicCounter));
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v1")).ok());
  rig.content_store().snapshot_all();
  ASSERT_TRUE(alice.put_file("/f", to_bytes("v2")).ok());
  rig.content_store().rollback_all();
  EXPECT_EQ(alice.get_file("/f").first.status, proto::Status::kError);
  EXPECT_GT(rig.platform().stats().counter_increments, 0u);
}

TEST(RollbackMemberList, GroupStoreRollbackDetected) {
  Rig rig(rollback_config());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.add_user_to_group("bob", "g").ok());
  ASSERT_TRUE(alice.put_file("/f", to_bytes("x")).ok());
  ASSERT_TRUE(alice.set_permission("/f", "g", fs::kPermRead).ok());
  EXPECT_TRUE(bob.get_file("/f").first.ok());

  rig.group_store().snapshot_all();
  ASSERT_TRUE(alice.remove_user_from_group("bob", "g").ok());
  rig.group_store().rollback_all();  // revive bob's membership
  // The enclave's in-memory group-record hashes flag the stale list.
  EXPECT_NE(bob.get_file("/f").first.status, proto::Status::kOk);
}

// --------------------------------------------------- client-side dedup ---

core::EnclaveConfig client_dedup_config() {
  core::EnclaveConfig config;
  config.deduplication = true;
  config.client_side_dedup = true;
  return config;
}

TEST(ClientDedup, SecondUploadSkipsTheBody) {
  Rig rig(client_dedup_config());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  const Bytes payload = rig.rng().bytes(300'000);

  bool uploaded = false;
  ASSERT_TRUE(alice.put_file_deduplicated("/a", payload, &uploaded).ok());
  EXPECT_TRUE(uploaded);  // first copy travels

  // Bob's channel: measure bytes before/after the deduplicated upload.
  const auto before = rig.channel(1).stats_snapshot().bytes_a_to_b;
  ASSERT_TRUE(bob.put_file_deduplicated("/b", payload, &uploaded).ok());
  EXPECT_FALSE(uploaded);  // §V-A: "only upload the whole file if necessary"
  const auto transferred =
      rig.channel(1).stats_snapshot().bytes_a_to_b - before;
  EXPECT_LT(transferred, 2'000u);  // probe only, no 300 KB body

  EXPECT_EQ(bob.get_file("/b").second, payload);
  // Refcounting still works through the probe path.
  ASSERT_TRUE(alice.remove("/a").ok());
  EXPECT_EQ(bob.get_file("/b").second, payload);
}

TEST(ClientDedup, UnknownContentFallsBackToUpload) {
  Rig rig(client_dedup_config());
  auto& alice = rig.connect("alice");
  bool uploaded = false;
  ASSERT_TRUE(
      alice.put_file_deduplicated("/new", to_bytes("never seen"), &uploaded)
          .ok());
  EXPECT_TRUE(uploaded);
  EXPECT_EQ(alice.get_file("/new").second, to_bytes("never seen"));
}

TEST(ClientDedup, ProbeRequiresWriteAuthorization) {
  Rig rig(client_dedup_config());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  const Bytes payload = to_bytes("alice's content");
  ASSERT_TRUE(alice.put_file("/mine", payload).ok());
  // Bob may not overwrite alice's file via the probe either.
  bool uploaded = false;
  EXPECT_EQ(bob.put_file_deduplicated("/mine", payload, &uploaded).status,
            proto::Status::kForbidden);
}

TEST(ClientDedup, ExistenceLeakIsThePaperCaveat) {
  // The reason the paper prefers server-side dedup [58]: the probe reveals
  // whether *someone* already stored this exact content. We document the
  // trade-off by asserting the observable behaviour.
  Rig rig(client_dedup_config());
  auto& alice = rig.connect("alice");
  auto& spy = rig.connect("spy");
  const Bytes payload = to_bytes("has alice stored this exact file?");
  ASSERT_TRUE(alice.put_file("/secret-doc", payload).ok());
  bool uploaded = true;
  ASSERT_TRUE(spy.put_file_deduplicated("/spy-probe", payload, &uploaded).ok());
  EXPECT_FALSE(uploaded);  // the leak: spy learns the content exists
}

TEST(ClientDedup, DisabledProbeRejected) {
  core::EnclaveConfig config;
  config.deduplication = true;  // server-side only
  Rig rig(config);
  auto& alice = rig.connect("alice");
  bool uploaded = false;
  // Falls back to a normal upload because the probe is refused.
  const auto resp =
      alice.put_file_deduplicated("/f", to_bytes("x"), &uploaded);
  EXPECT_EQ(resp.status, proto::Status::kBadRequest);
}

// ------------------------------------------------------ replication §V-F ---

TEST(Replication, RootKeyTransferBetweenEnclaves) {
  TestRng rng(0xf00);
  tls::CertificateAuthority ca(rng);
  sgx::SgxPlatform platform_a(rng), platform_b(rng);
  store::MemoryStore content, group, dedup;
  core::Stores stores{content, group, dedup};

  core::SegShareEnclave root(platform_a, rng, ca.public_key(), stores);
  core::SegShareServer::provision_certificate(root, ca, platform_a);
  {
    core::SegShareServer server(root);
    net::DuplexChannel channel;
    client::UserClient alice(rng, ca.public_key(),
                             client::enroll_user(rng, ca, "alice"));
    server.accept(channel);
    alice.connect(channel.a(), [&] { server.pump(); });
    ASSERT_TRUE(alice.put_file("/replicated", to_bytes("shared state")).ok());
  }

  // Replica on a different platform, same central data repository.
  core::SegShareEnclave replica(platform_b, rng, ca.public_key(), stores,
                                core::EnclaveConfig{},
                                /*auto_bootstrap=*/false);
  const Bytes request = replica.replication_request();
  const Bytes response =
      root.serve_replication(request, platform_b.attestation_public_key());
  replica.install_replicated_key(response,
                                 platform_a.attestation_public_key());

  core::SegShareServer::provision_certificate(replica, ca, platform_b);
  core::SegShareServer server(replica);
  net::DuplexChannel channel;
  client::UserClient bob(rng, ca.public_key(),
                         client::enroll_user(rng, ca, "alice"));
  server.accept(channel);
  bob.connect(channel.a(), [&] { server.pump(); });
  EXPECT_EQ(bob.get_file("/replicated").second, to_bytes("shared state"));
}

TEST(Replication, RejectsForeignEnclave) {
  TestRng rng(0xf01);
  tls::CertificateAuthority ca(rng), other_ca(rng, "Other");
  sgx::SgxPlatform platform_a(rng), platform_b(rng);
  store::MemoryStore c1, g1, d1, c2, g2, d2;

  core::SegShareEnclave root(platform_a, rng, ca.public_key(),
                             core::Stores{c1, g1, d1});
  // An enclave built for a different CA has a different measurement.
  core::SegShareEnclave impostor(platform_b, rng, other_ca.public_key(),
                                 core::Stores{c2, g2, d2},
                                 core::EnclaveConfig{},
                                 /*auto_bootstrap=*/false);
  const Bytes request = impostor.replication_request();
  EXPECT_THROW(
      root.serve_replication(request, platform_b.attestation_public_key()),
      AuthError);
}

TEST(Replication, RejectsWrongPlatformKey) {
  TestRng rng(0xf02);
  tls::CertificateAuthority ca(rng);
  sgx::SgxPlatform platform_a(rng), platform_b(rng), platform_c(rng);
  store::MemoryStore c1, g1, d1, c2, g2, d2;
  core::SegShareEnclave root(platform_a, rng, ca.public_key(),
                             core::Stores{c1, g1, d1});
  core::SegShareEnclave replica(platform_b, rng, ca.public_key(),
                                core::Stores{c2, g2, d2},
                                core::EnclaveConfig{},
                                /*auto_bootstrap=*/false);
  const Bytes request = replica.replication_request();
  // Root told the wrong platform key for the replica: quote fails.
  EXPECT_THROW(
      root.serve_replication(request, platform_c.attestation_public_key()),
      AuthError);
}

// ---------------------------------------------------- backup/restore §V-G ---

TEST(Backup, RestoreRequiresSignedReset) {
  TestRng rng(0xbac);
  tls::CertificateAuthority ca(rng);
  sgx::SgxPlatform platform(rng);
  store::MemoryStore content, group, dedup;
  core::Stores stores{content, group, dedup};

  core::EnclaveConfig config;
  config.hide_names = false;
  config.rollback_protection = true;
  config.fs_guard = core::FsRollbackGuard::kMonotonicCounter;

  std::map<std::string, Bytes> backup_content, backup_group, backup_dedup;
  {
    core::SegShareEnclave enclave(platform, rng, ca.public_key(), stores,
                                  config);
    core::SegShareServer::provision_certificate(enclave, ca, platform);
    core::SegShareServer server(enclave);
    net::DuplexChannel channel;
    client::UserClient alice(rng, ca.public_key(),
                             client::enroll_user(rng, ca, "alice"));
    server.accept(channel);
    alice.connect(channel.a(), [&] { server.pump(); });
    ASSERT_TRUE(alice.put_file("/keep", to_bytes("backed up")).ok());
    // §V-G: "the cloud provider only has to copy the files on disk".
    backup_content = content.snapshot();
    backup_group = group.snapshot();
    backup_dedup = dedup.snapshot();
    ASSERT_TRUE(alice.put_file("/keep", to_bytes("newer")).ok());
    enclave.destroy();
  }

  // Disaster: restore the old backup, restart the enclave.
  content.restore(backup_content);
  group.restore(backup_group);
  dedup.restore(backup_dedup);
  core::SegShareEnclave enclave2(platform, rng, ca.public_key(), stores,
                                 config);
  EXPECT_TRUE(enclave2.needs_reset());
  net::DuplexChannel probe;
  EXPECT_THROW(enclave2.accept(probe.a()), RollbackError);

  // A reset signed by anyone else is rejected.
  tls::CertificateAuthority mallory(rng, "Mallory");
  EXPECT_THROW(enclave2.apply_signed_reset(
                   core::SegShareEnclave::reset_message_payload(),
                   mallory.sign(core::SegShareEnclave::reset_message_payload())),
               AuthError);

  // The real CA authorises the restored state.
  enclave2.apply_signed_reset(
      core::SegShareEnclave::reset_message_payload(),
      ca.sign(core::SegShareEnclave::reset_message_payload()));
  EXPECT_FALSE(enclave2.needs_reset());

  core::SegShareServer server2(enclave2);
  net::DuplexChannel channel2;
  client::UserClient alice2(rng, ca.public_key(),
                            client::enroll_user(rng, ca, "alice"));
  server2.accept(channel2);
  alice2.connect(channel2.a(), [&] { server2.pump(); });
  EXPECT_EQ(alice2.get_file("/keep").second, to_bytes("backed up"));
}

}  // namespace
}  // namespace seg
