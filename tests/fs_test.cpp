#include <gtest/gtest.h>

#include "common/error.h"
#include "fs/path.h"
#include "fs/records.h"

namespace seg::fs {
namespace {

// ------------------------------------------------------------------ paths ---

TEST(Path, DirDetection) {
  EXPECT_TRUE(is_dir_path("/"));
  EXPECT_TRUE(is_dir_path("/a/"));
  EXPECT_FALSE(is_dir_path("/a"));
  EXPECT_FALSE(is_dir_path(""));
  EXPECT_TRUE(is_root("/"));
  EXPECT_FALSE(is_root("/a/"));
}

TEST(Path, Validation) {
  EXPECT_TRUE(is_valid_path("/"));
  EXPECT_TRUE(is_valid_path("/a"));
  EXPECT_TRUE(is_valid_path("/a/"));
  EXPECT_TRUE(is_valid_path("/a/b.txt"));
  EXPECT_TRUE(is_valid_path("/a/b/c/"));
  EXPECT_FALSE(is_valid_path(""));
  EXPECT_FALSE(is_valid_path("a"));
  EXPECT_FALSE(is_valid_path("a/"));
  EXPECT_FALSE(is_valid_path("//"));
  EXPECT_FALSE(is_valid_path("/a//b"));
  EXPECT_FALSE(is_valid_path("/./"));
  EXPECT_FALSE(is_valid_path("/a/../b"));
  EXPECT_FALSE(is_valid_path("/.."));
}

TEST(Path, Parent) {
  EXPECT_EQ(parent("/"), "/");
  EXPECT_EQ(parent("/a"), "/");
  EXPECT_EQ(parent("/a/"), "/");
  EXPECT_EQ(parent("/a/b"), "/a/");
  EXPECT_EQ(parent("/a/b/"), "/a/");
  EXPECT_EQ(parent("/a/b/c.txt"), "/a/b/");
}

TEST(Path, LeafName) {
  EXPECT_EQ(leaf_name("/"), "");
  EXPECT_EQ(leaf_name("/a"), "a");
  EXPECT_EQ(leaf_name("/a/"), "a");
  EXPECT_EQ(leaf_name("/a/b.txt"), "b.txt");
}

TEST(Path, Join) {
  EXPECT_EQ(join("/", "a"), "/a");
  EXPECT_EQ(join("/", "a", true), "/a/");
  EXPECT_EQ(join("/x/", "y.txt"), "/x/y.txt");
  EXPECT_THROW(join("/a", "b"), Error);       // base not a dir
  EXPECT_THROW(join("/a/", "b/c"), Error);    // name contains '/'
  EXPECT_THROW(join("/a/", ""), Error);
}

TEST(Path, Segments) {
  EXPECT_TRUE(segments("/").empty());
  EXPECT_EQ(segments("/a/b/c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(segments("/a/b/"), (std::vector<std::string>{"a", "b"}));
}

TEST(Path, AncestorAndRebase) {
  EXPECT_TRUE(is_ancestor("/a/", "/a/b/c"));
  EXPECT_TRUE(is_ancestor("/", "/anything"));
  EXPECT_FALSE(is_ancestor("/a/", "/ab/c"));
  EXPECT_FALSE(is_ancestor("/a", "/a/b"));  // not a dir path
  EXPECT_EQ(rebase("/a/b/c", "/a/", "/x/"), "/x/b/c");
  EXPECT_EQ(rebase("/a/", "/a/", "/x/"), "/x/");
  EXPECT_THROW(rebase("/b/c", "/a/", "/x/"), Error);
}

// -------------------------------------------------------------------- ACL ---

TEST(Acl, OwnersSortedUnique) {
  Acl acl;
  acl.add_owner(5);
  acl.add_owner(1);
  acl.add_owner(5);
  EXPECT_EQ(acl.owners(), (std::vector<GroupId>{1, 5}));
  EXPECT_TRUE(acl.is_owner(1));
  EXPECT_FALSE(acl.is_owner(2));
  acl.remove_owner(1);
  EXPECT_FALSE(acl.is_owner(1));
}

TEST(Acl, PermissionUpsertAndRemove) {
  Acl acl;
  acl.set_permission(3, kPermRead);
  acl.set_permission(1, kPermReadWrite);
  EXPECT_EQ(acl.permission(3), kPermRead);
  EXPECT_EQ(acl.permission(1), kPermReadWrite);
  EXPECT_FALSE(acl.permission(2).has_value());
  acl.set_permission(3, kPermWrite);
  EXPECT_EQ(acl.permission(3), kPermWrite);
  acl.set_permission(3, kPermNone);  // removes the entry
  EXPECT_FALSE(acl.permission(3).has_value());
  EXPECT_EQ(acl.entry_count(), 1u);
}

TEST(Acl, SerializeRoundtrip) {
  Acl acl;
  acl.set_inherit(true);
  acl.add_owner(7);
  acl.add_owner(2);
  acl.set_permission(10, kPermRead);
  acl.set_permission(4, kPermDeny);
  const Acl parsed = Acl::parse(acl.serialize());
  EXPECT_TRUE(parsed.inherit());
  EXPECT_EQ(parsed.owners(), acl.owners());
  EXPECT_EQ(parsed.permission(10), kPermRead);
  EXPECT_EQ(parsed.permission(4), kPermDeny);
}

TEST(Acl, StorageIs32BitPerEntry) {
  // The prototype's layout: one 32-bit word for count+flag, 32 bits per
  // owner and per permission entry (drives the E6 overhead numbers).
  Acl acl;
  acl.add_owner(1);
  const std::size_t base = acl.serialize().size();
  acl.set_permission(2, kPermRead);
  EXPECT_EQ(acl.serialize().size(), base + 4);
  acl.add_owner(3);
  EXPECT_EQ(acl.serialize().size(), base + 8);
}

TEST(Acl, ParseRejectsGarbage) {
  EXPECT_THROW(Acl::parse(Bytes{1, 2, 3}), Error);
  Acl acl;
  acl.add_owner(1);
  Bytes data = acl.serialize();
  data.push_back(0);
  EXPECT_THROW(Acl::parse(data), ProtocolError);
}

TEST(Perm, Covers) {
  EXPECT_TRUE(perm_covers(kPermRead, kPermRead));
  EXPECT_TRUE(perm_covers(kPermReadWrite, kPermRead));
  EXPECT_TRUE(perm_covers(kPermReadWrite, kPermWrite));
  EXPECT_FALSE(perm_covers(kPermRead, kPermWrite));
  EXPECT_FALSE(perm_covers(kPermDeny | kPermRead, kPermRead));
  EXPECT_FALSE(perm_covers(kPermDeny, kPermRead));
  EXPECT_FALSE(perm_covers(kPermNone, kPermRead));
}

// -------------------------------------------------------------- Directory ---

TEST(Directory, SortedChildren) {
  Directory dir;
  dir.add("/z");
  dir.add("/a");
  dir.add("/m/");
  EXPECT_EQ(dir.children(), (std::vector<std::string>{"/a", "/m/", "/z"}));
  EXPECT_TRUE(dir.contains("/m/"));
  dir.remove("/m/");
  EXPECT_FALSE(dir.contains("/m/"));
  EXPECT_EQ(dir.size(), 2u);
}

TEST(Directory, SerializeRoundtrip) {
  Directory dir;
  dir.add("/a/file with spaces");
  dir.add("/a/\xc3\xa9");
  const Directory parsed = Directory::parse(dir.serialize());
  EXPECT_EQ(parsed.children(), dir.children());
}

TEST(Directory, ParseRejectsUnsorted) {
  // Hand-craft an unsorted children list.
  Bytes data;
  put_u32_be(data, 2);
  put_u32_be(data, 2);
  append(data, to_bytes("/b"));
  put_u32_be(data, 2);
  append(data, to_bytes("/a"));
  EXPECT_THROW(Directory::parse(data), ProtocolError);
}

// -------------------------------------------------------------- MemberList ---

TEST(MemberList, MembershipOps) {
  MemberList list;
  list.add(3);
  list.add(1);
  list.add(3);
  EXPECT_EQ(list.groups(), (std::vector<GroupId>{1, 3}));
  EXPECT_TRUE(list.is_member(3));
  list.remove(3);
  EXPECT_FALSE(list.is_member(3));
  const MemberList parsed = MemberList::parse(list.serialize());
  EXPECT_EQ(parsed.groups(), list.groups());
}

// --------------------------------------------------------------- GroupList ---

TEST(GroupList, CreateFindRemove) {
  GroupList groups;
  const GroupId a = groups.create("alpha");
  const GroupId b = groups.create("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(groups.find("alpha"), a);
  EXPECT_FALSE(groups.find("gamma").has_value());
  EXPECT_THROW(groups.create("alpha"), ProtocolError);
  groups.remove(a);
  EXPECT_FALSE(groups.find("alpha").has_value());
  EXPECT_THROW(groups.remove(a), ProtocolError);
}

TEST(GroupList, IdsNeverReused) {
  GroupList groups;
  const GroupId a = groups.create("a");
  groups.remove(a);
  const GroupId b = groups.create("b");
  EXPECT_GT(b, a);  // stale ACL entries can never point at a new group
}

TEST(GroupList, Ownership) {
  GroupList groups;
  const GroupId g = groups.create("g");
  const GroupId owner1 = groups.create("o1");
  const GroupId owner2 = groups.create("o2");
  groups.add_owner(g, owner1);
  groups.add_owner(g, owner2);
  EXPECT_TRUE(groups.is_owner(g, owner1));
  EXPECT_TRUE(groups.is_owner(g, owner2));  // F7: multiple group owners
  groups.remove_owner(g, owner1);
  EXPECT_FALSE(groups.is_owner(g, owner1));
  EXPECT_FALSE(groups.is_owner(99, owner1));
}

TEST(GroupList, SerializeRoundtripPreservesNextId) {
  GroupList groups;
  const GroupId a = groups.create("a");
  groups.add_owner(a, a);
  groups.remove(a);
  GroupList parsed = GroupList::parse(groups.serialize());
  EXPECT_GT(parsed.create("fresh"), a);
}

}  // namespace
}  // namespace seg::fs
