// Multi-threaded enclave request pipeline: reader–writer file-system
// concurrency, per-connection serialization, pump() fairness, and
// bit-identical store traffic when the pool is disabled.
//
// The stress tests drive real threads through the full client → TLS →
// enclave → store stack; failures are collected in atomics and asserted
// after join (gtest assertions are not reliable off the main thread).
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "fs/records.h"
#include "segshare_test_util.h"

namespace seg {
namespace {

using testutil::Rig;

core::EnclaveConfig threaded_config(std::size_t service_threads,
                                    bool dedup = false) {
  core::EnclaveConfig config;
  config.service_threads = service_threads;
  config.metadata_cache_bytes = 256 << 10;
  config.deduplication = dedup;
  return config;
}

std::map<std::string, Bytes> dump(store::UntrustedStore& store) {
  std::map<std::string, Bytes> out;
  for (const auto& name : store.list()) out[name] = *store.get(name);
  return out;
}

/// Identical scripted workload against one rig; returns nothing, mutates
/// the rig's stores.
void run_script(Rig& rig) {
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(alice.put_file("/a.bin", to_bytes("alpha")).ok());
  ASSERT_TRUE(alice.mkdir("/docs/").ok());
  ASSERT_TRUE(alice.put_file("/docs/b.bin", to_bytes("beta")).ok());
  ASSERT_TRUE(alice.add_user_to_group("bob", "team").ok());
  ASSERT_TRUE(alice.set_permission("/docs/b.bin", "team", fs::kPermRead).ok());
  EXPECT_EQ(bob.get_file("/docs/b.bin").second, to_bytes("beta"));
  ASSERT_TRUE(alice.put_file("/a.bin", to_bytes("alpha2")).ok());
  ASSERT_TRUE(alice.remove("/a.bin").ok());
  ASSERT_TRUE(bob.put_file("/bob.bin", to_bytes("from-bob")).ok());
  EXPECT_EQ(alice.stat("/docs/b.bin").status, proto::Status::kOk);
}

// With service_threads == 1 (the default) no pool exists and the request
// path is exactly the old sequential one; with a pool but serial driving
// the task order — and therefore every RNG draw and ciphertext — is
// unchanged. Both must leave bit-identical stores.
TEST(ServiceThreads, SerialTrafficIsBitIdenticalAcrossPoolSizes) {
  Rig baseline(threaded_config(1));
  Rig defaulted;  // config.service_threads defaults to 1
  Rig pooled(threaded_config(4));
  run_script(baseline);
  run_script(defaulted);
  run_script(pooled);

  // The metadata-cache budget alters traffic vs the defaulted rig (probe
  // batching), so compare baseline vs pooled (same config), and
  // separately assert the defaulted rig produced the same namespace.
  EXPECT_EQ(dump(baseline.content_store()), dump(pooled.content_store()));
  EXPECT_EQ(dump(baseline.group_store()), dump(pooled.group_store()));
  EXPECT_EQ(dump(baseline.dedup_store()), dump(pooled.dedup_store()));

  auto& check = defaulted.connect("alice");
  EXPECT_EQ(check.get_file("/docs/b.bin").second, to_bytes("beta"));
  EXPECT_EQ(check.stat("/a.bin").status, proto::Status::kNotFound);
}

// A poisoned client must not starve the others: pump() services every
// ready connection before rethrowing the first error.
TEST(PumpFairness, PoisonedPeerDoesNotStarveOthers) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/doc", to_bytes("hello")).ok());
  auto& bob = rig.connect("bob");
  ASSERT_TRUE(bob.put_file("/bob.bin", to_bytes("bobs")).ok());

  // Bob has a request in flight (begin_put sends the request frame
  // without pumping), then alice's channel turns to garbage.
  const Bytes body = to_bytes("payload-after-poison");
  auto stream = bob.begin_put("/late.bin", body.size());
  rig.channel(0).a().send(rig.rng().bytes(64));

  // One pump: alice's record forgery is fatal and rethrown, but bob's
  // request was still serviced in the same round.
  EXPECT_THROW(rig.server().pump(), IntegrityError);
  EXPECT_EQ(rig.enclave().connection_count(), 1u);
  EXPECT_EQ(rig.server().connection_count(), 1u);

  // Bob's PUT completes normally on the surviving connection.
  stream.append(body);
  ASSERT_TRUE(stream.finish().ok());
  EXPECT_EQ(bob.get_file("/late.bin").second, body);
}

// Same round-trip through the worker pool: two clients with requests
// pending, one pump() dispatches both to pool workers in parallel.
TEST(PumpFairness, SinglePumpFansOutAcrossPoolWorkers) {
  Rig rig(threaded_config(4));
  ASSERT_TRUE(rig.enclave().concurrent());
  auto& alice = rig.connect("alice");
  auto& bob = rig.connect("bob");

  const Bytes body_a = rig.rng().bytes(2000);
  const Bytes body_b = rig.rng().bytes(2000);
  auto stream_a = alice.begin_put("/a.bin", body_a.size());
  auto stream_b = bob.begin_put("/b.bin", body_b.size());
  // Both request frames are pending; this single pump services them
  // concurrently (each PUT takes the exclusive fs lock in turn).
  rig.server().pump();

  stream_a.append(body_a);
  stream_b.append(body_b);
  ASSERT_TRUE(stream_a.finish().ok());
  ASSERT_TRUE(stream_b.finish().ok());
  EXPECT_EQ(alice.get_file("/b.bin").first.status, proto::Status::kForbidden);
  EXPECT_EQ(alice.get_file("/a.bin").second, body_a);
  EXPECT_EQ(bob.get_file("/b.bin").second, body_b);
}

// ---------------------------------------------------------------- stress ---

// One independently-pumped connection per worker thread. Clients are
// created and handshaken on the main thread (the rig RNG is not meant
// for concurrent enrollment); the threads only issue requests.
struct StressClient {
  std::unique_ptr<TestRng> rng;
  std::unique_ptr<net::DuplexChannel> channel;
  std::unique_ptr<client::UserClient> client;
};

StressClient make_stress_client(Rig& rig, const std::string& user,
                                std::uint64_t seed) {
  StressClient sc;
  sc.rng = std::make_unique<TestRng>(seed);
  sc.channel = std::make_unique<net::DuplexChannel>();
  sc.client = std::make_unique<client::UserClient>(
      *sc.rng, rig.ca().public_key(),
      client::enroll_user(rig.rng(), rig.ca(), user));
  const std::uint64_t id = rig.server().accept(*sc.channel);
  sc.client->connect(sc.channel->a(),
                     [&rig, id] { rig.server().pump_connection(id); });
  return sc;
}

TEST(ConcurrencyStress, MixedWorkloadKeepsStoreConsistent) {
  Rig rig(threaded_config(4, /*dedup=*/true));
  constexpr int kRounds = 24;
  const Bytes shared = to_bytes("identical-content-for-dedup-churn");

  // Seed files, group membership and permissions (single-threaded setup).
  auto& admin = rig.connect("admin");
  std::vector<Bytes> seed_contents;
  for (int j = 0; j < 4; ++j) {
    seed_contents.push_back(to_bytes("seed-content-" + std::to_string(j)));
    ASSERT_TRUE(admin
                    .put_file("/s" + std::to_string(j) + ".bin",
                              seed_contents.back())
                    .ok());
  }
  ASSERT_TRUE(admin.add_user_to_group("bob", "readers").ok());
  for (int j = 0; j < 4; ++j)
    ASSERT_TRUE(admin
                    .set_permission("/s" + std::to_string(j) + ".bin",
                                    "readers", fs::kPermRead)
                    .ok());

  StressClient alice = make_stress_client(rig, "alice", 0xa11ce);
  StressClient carol = make_stress_client(rig, "carol", 0xca401);
  StressClient bob = make_stress_client(rig, "bob", 0xb0b);
  StressClient mallory = make_stress_client(rig, "mallory", 0x3a110);
  // The mutator thread needs its own independently-pumped connection —
  // the rig-connected admin pumps globally, which would have it service
  // other threads' connections.
  StressClient admin2 = make_stress_client(rig, "admin", 0xad314);

  const std::size_t dedup_blobs_after_setup =
      rig.dedup_store().list().size();

  std::atomic<int> failures{0};
  std::atomic<int> acl_denied_reads{0};

  // Two uploaders: cycle content through their own root-level files and
  // repeatedly upload identical bytes to exercise dedup refcounts under
  // contention.
  auto uploader = [&](StressClient& sc, const std::string& tag) {
    try {
      for (int k = 0; k < kRounds; ++k) {
        const std::string own =
            "/" + tag + std::to_string(k % 3) + ".bin";
        const Bytes content = to_bytes(tag + "-v" + std::to_string(k));
        if (!sc.client->put_file(own, content).ok()) ++failures;
        const std::string dup =
            "/dup-" + tag + "-" + std::to_string(k) + ".bin";
        if (!sc.client->put_file(dup, shared).ok()) ++failures;
      }
    } catch (...) {
      ++failures;
    }
  };
  // Downloader: verified reads of the seed files under the shared lock.
  // "/s0.bin" races with the ACL mutator, so both outcomes are legal
  // there; the others must always succeed with exact content.
  auto downloader = [&] {
    try {
      for (int k = 0; k < kRounds * 2; ++k) {
        const int j = k % 4;
        const auto [response, body] =
            bob.client->get_file("/s" + std::to_string(j) + ".bin");
        if (j == 0 && response.status == proto::Status::kForbidden) {
          ++acl_denied_reads;
          continue;
        }
        if (!response.ok() || body != seed_contents[j]) ++failures;
        if (k % 8 == 0 && !bob.client->list("/").ok()) ++failures;
      }
    } catch (...) {
      ++failures;
    }
  };
  // ACL mutator: toggles bob's access to /s0.bin and churns membership
  // of an auxiliary group (exclusive-lock traffic).
  auto mutator = [&] {
    try {
      for (int k = 0; k < kRounds; ++k) {
        const std::uint32_t perm =
            (k % 2 == 0) ? fs::kPermDeny : fs::kPermRead;
        if (!admin2.client->set_permission("/s0.bin", "readers", perm).ok())
          ++failures;
        if (k % 2 == 0) {
          if (!admin2.client->add_user_to_group("carol", "aux").ok())
            ++failures;
        } else {
          if (!admin2.client->remove_user_from_group("carol", "aux").ok())
            ++failures;
        }
      }
      // Leave /s0.bin readable for the post-join verification.
      if (!admin2.client->set_permission("/s0.bin", "readers", fs::kPermRead)
               .ok())
        ++failures;
    } catch (...) {
      ++failures;
    }
  };
  // Prober: never enters any group — every access must be denied, no
  // matter how the concurrent mutations interleave.
  auto prober = [&] {
    try {
      for (int k = 0; k < kRounds; ++k) {
        if (mallory.client->get_file("/s1.bin").first.status !=
            proto::Status::kForbidden)
          ++failures;
        if (mallory.client->put_file("/s1.bin", to_bytes("evil")).status !=
            proto::Status::kForbidden)
          ++failures;
      }
    } catch (...) {
      ++failures;
    }
  };

  std::vector<std::thread> threads;
  threads.emplace_back(uploader, std::ref(alice), "ua");
  threads.emplace_back(uploader, std::ref(carol), "uc");
  threads.emplace_back(downloader);
  threads.emplace_back(mutator);
  threads.emplace_back(prober);
  for (auto& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);

  // Last-writer contents are intact.
  for (const std::string& tag : {std::string("ua"), std::string("uc")}) {
    for (int slot = 0; slot < 3; ++slot) {
      // Rounds hitting this slot: slot, slot+3, ...; the last one wins.
      int last = slot;
      while (last + 3 < kRounds) last += 3;
      auto& reader = tag == "ua" ? alice : carol;
      const auto [response, body] = reader.client->get_file(
          "/" + tag + std::to_string(slot) + ".bin");
      ASSERT_TRUE(response.ok());
      EXPECT_EQ(body, to_bytes(tag + "-v" + std::to_string(last)));
    }
  }
  // Seed files survived the churn byte-for-byte.
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(bob.client->get_file("/s" + std::to_string(j) + ".bin").second,
              seed_contents[j]);
  }
  // No lost dedup refcount updates: removing every file the uploaders
  // created must drop all their blobs and return the dedup store to its
  // setup state — any refcount over- or under-count would leak a blob or
  // delete a shared one early.
  for (const std::string& tag : {std::string("ua"), std::string("uc")}) {
    auto& owner = tag == "ua" ? alice : carol;
    for (int k = 0; k < kRounds; ++k) {
      ASSERT_TRUE(
          owner.client
              ->remove("/dup-" + tag + "-" + std::to_string(k) + ".bin")
              .ok());
    }
    for (int slot = 0; slot < 3; ++slot) {
      ASSERT_TRUE(
          owner.client->remove("/" + tag + std::to_string(slot) + ".bin")
              .ok());
    }
  }
  EXPECT_EQ(rig.dedup_store().list().size(), dedup_blobs_after_setup);
}

// Concurrent GETs share the file-system lock: all readers see consistent
// content while an uploader overwrites an unrelated file.
TEST(ConcurrencyStress, ParallelReadersWithConcurrentWriter) {
  Rig rig(threaded_config(4));
  auto& admin = rig.connect("admin");
  const Bytes stable = rig.rng().bytes(8 << 10);
  ASSERT_TRUE(admin.put_file("/stable.bin", stable).ok());
  for (const std::string user : {"r0", "r1", "r2"})
    ASSERT_TRUE(admin.add_user_to_group(user, "readers").ok());
  ASSERT_TRUE(
      admin.set_permission("/stable.bin", "readers", fs::kPermRead).ok());

  std::vector<StressClient> readers;
  for (int i = 0; i < 3; ++i)
    readers.push_back(
        make_stress_client(rig, "r" + std::to_string(i), 0x4000 + i));
  StressClient writer = make_stress_client(rig, "admin", 0x5000);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (auto& reader : readers) {
    threads.emplace_back([&] {
      try {
        for (int k = 0; k < 30; ++k) {
          const auto [response, body] =
              reader.client->get_file("/stable.bin");
          if (!response.ok() || body != stable) ++failures;
        }
      } catch (...) {
        ++failures;
      }
    });
  }
  threads.emplace_back([&] {
    try {
      for (int k = 0; k < 15; ++k) {
        if (!writer.client
                 ->put_file("/hot.bin", to_bytes("v" + std::to_string(k)))
                 .ok())
          ++failures;
      }
    } catch (...) {
      ++failures;
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(writer.client->get_file("/hot.bin").second, to_bytes("v14"));
}

}  // namespace
}  // namespace seg
