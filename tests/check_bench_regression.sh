#!/bin/sh
# Perf-regression gate for the structured bench reports (DESIGN.md §8).
#
# Usage: check_bench_regression.sh <fresh_dir> <baseline_dir> [tolerance_pct]
#
# Compares every BENCH_*.json in <fresh_dir> against the committed
# baseline of the same name in <baseline_dir> (bench/baselines/). A
# metric regresses when it moves past the tolerance in its unit's
# "bad" direction:
#   ms / us / ns / s ......... higher is worse
#   MB/s, ops/s, x ........... lower is worse
#   everything else .......... informational only (reported, never fails)
# Metrics present on only one side are reported but never fail — full
# and smoke workloads legitimately emit different sweep points.
#
# With SEGSHARE_BENCH_SMOKE=1 in the environment the check is
# informational: regressions are printed but the exit code stays 0
# (smoke workloads finish in seconds and jitter accordingly; the
# enforced comparison is the full-size run). The default tolerance is
# 50%, deliberately loose — this gate exists to catch order-of-magnitude
# cliffs from an accidental serial fallback or cache bypass, not to
# litigate scheduler noise.
#
# Refreshing baselines after an intentional perf change:
#   ctest -L bench-smoke && cp build/bench_json/BENCH_*.json bench/baselines/
set -eu

fresh="${1:?usage: check_bench_regression.sh <fresh_dir> <baseline_dir> [tolerance_pct]}"
base="${2:?usage: check_bench_regression.sh <fresh_dir> <baseline_dir> [tolerance_pct]}"
tol="${3:-50}"
informational="${SEGSHARE_BENCH_SMOKE:-0}"

python3 - "$fresh" "$base" "$tol" "$informational" <<'EOF'
import glob, json, os, sys

fresh_dir, base_dir, tol_pct, informational = sys.argv[1:5]
tol = float(tol_pct) / 100.0
informational = informational not in ("", "0")

LOWER_IS_BETTER = {"ms", "us", "ns", "s"}
HIGHER_IS_BETTER = {"MB/s", "ops/s", "x"}


def load(path):
    with open(path) as handle:
        doc = json.load(handle)
    return {r["name"]: (float(r["value"]), r["unit"]) for r in doc["results"]}


fresh_paths = sorted(glob.glob(os.path.join(fresh_dir, "BENCH_*.json")))
if not fresh_paths:
    sys.exit(f"FAIL: no BENCH_*.json reports in {fresh_dir}")

regressions, notes, compared = [], [], 0
for path in fresh_paths:
    name = os.path.basename(path)
    base_path = os.path.join(base_dir, name)
    if not os.path.exists(base_path):
        notes.append(f"{name}: no committed baseline (new bench?)")
        continue
    fresh, base = load(path), load(base_path)
    for metric in sorted(set(fresh) | set(base)):
        if metric not in base:
            notes.append(f"{name}: {metric} is new (not in baseline)")
            continue
        if metric not in fresh:
            notes.append(f"{name}: {metric} missing from fresh run")
            continue
        (fv, fu), (bv, bu) = fresh[metric], base[metric]
        if fu != bu:
            regressions.append(f"{name}: {metric} unit changed {bu!r} -> {fu!r}")
            continue
        compared += 1
        if bv == 0:
            continue
        delta = (fv - bv) / abs(bv)
        if fu in LOWER_IS_BETTER and delta > tol:
            regressions.append(
                f"{name}: {metric} {bv:g}{fu} -> {fv:g}{fu} (+{delta:.0%}, worse)")
        elif fu in HIGHER_IS_BETTER and -delta > tol:
            regressions.append(
                f"{name}: {metric} {bv:g}{fu} -> {fv:g}{fu} ({delta:.0%}, worse)")

for note in notes:
    print(f"note: {note}")
for reg in regressions:
    print(f"REGRESSION: {reg}")
verdict = (f"{compared} metrics compared vs {base_dir}, "
           f"{len(regressions)} past {tol:.0%} tolerance")
if regressions and not informational:
    sys.exit(f"FAIL: {verdict}")
if regressions:
    print(f"WARN (informational, smoke mode): {verdict}")
else:
    print(f"OK: {verdict}")
EOF
