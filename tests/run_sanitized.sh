#!/usr/bin/env sh
# Configure, build and run the full test suite under sanitizers. Any
# sanitizer report fails the run (-fno-sanitize-recover + halt_on_error).
#
# Usage: run_sanitized.sh [asan|tsan|all]   (default: all)
#   asan — ASan + UBSan  (preset "asan-ubsan", build dir build-asan/);
#          also covers the adversarial frame/parse sweeps in proto_test,
#          the zero-copy record path and bit-identity checks in tls_test,
#          the hostile-server client hardening in wire_test (bounds
#          of the gather/seal/view-aliasing buffers), the page
#          serialize/parse framing + tamper/replay sweeps in amap_test,
#          and the journal record parse/replay paths (reordered,
#          duplicated, torn and truncated sealed records) plus the
#          chain-compaction re-pack in amap_test.
#   tsan — ThreadSanitizer (preset "tsan",     build dir build-tsan/);
#          exercises the concurrent request pipeline in concurrency_test,
#          the switchless worker pool in sgx_test, the async store I/O
#          pool in store_test/pfs_test, the threaded pipeline on a
#          real DiskStore in disk_integration_test, the locked
#          DuplexChannel stats_snapshot() / wire_stats() counters in
#          net_test/wire_test, and the internally-synchronized paged
#          map's CryptoPool write-back batches, journal group commits
#          and streaming prefix scans in amap_test/tfm_test.
set -eu

repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"
mode="${1:-all}"

run_asan() {
  cmake --preset asan-ubsan -S "$repo"
  cmake --build --preset asan-ubsan -j "$jobs"
  ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
  ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
}

run_tsan() {
  cmake --preset tsan -S "$repo"
  cmake --build --preset tsan -j "$jobs"
  TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1" \
  ctest --test-dir "$repo/build-tsan" --output-on-failure -j "$jobs"
}

case "$mode" in
  asan) run_asan ;;
  tsan) run_tsan ;;
  all)  run_asan; run_tsan ;;
  *) echo "usage: $0 [asan|tsan|all]" >&2; exit 2 ;;
esac
