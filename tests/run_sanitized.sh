#!/usr/bin/env sh
# Configure, build and run the full test suite under ASan + UBSan
# (CMake preset "asan-ubsan", build dir build-asan/). Any sanitizer
# report fails the run (-fno-sanitize-recover=all + halt_on_error).
set -eu

repo="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
jobs="$(nproc 2>/dev/null || echo 4)"

cmake --preset asan-ubsan -S "$repo"
cmake --build --preset asan-ubsan -j "$jobs"

ASAN_OPTIONS="halt_on_error=1:detect_leaks=1" \
UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1" \
ctest --test-dir "$repo/build-asan" --output-on-failure -j "$jobs"
