// End-to-end tests for the zero-copy streaming wire path (GET/PUT):
// copy budget via net.wire.* telemetry, the END error-trailer protocol,
// and client-side hardening against a hostile or corrupted server.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "client/user_client.h"
#include "common/error.h"
#include "proto/messages.h"
#include "segshare_test_util.h"
#include "tls/handshake.h"
#include "tls/secure_channel.h"

namespace seg {
namespace {

using testutil::Rig;

// ----------------------------------------------------------- copy budget ---

TEST(WirePath, AtMostTwoCopiesPerPayloadByteEndToEnd) {
  Rig rig;
  auto& alice = rig.connect("alice");
  const auto& wire = tls::wire_stats();
  const std::uint64_t payload0 = wire.payload_bytes.load();
  const std::uint64_t gather0 = wire.gather_bytes.load();
  const std::uint64_t sealed0 = wire.sealed_bytes.load();

  const Bytes content = rig.rng().bytes(3 * proto::kStreamChunk + 1234);
  ASSERT_TRUE(alice.put_file("/big.bin", content).ok());
  EXPECT_EQ(alice.get_file("/big.bin").second, content);

  // Acceptance budget: every payload byte that crossed any secure channel
  // (client PUT frames, enclave GET frames, headers, responses) was
  // gathered exactly once into the record scratch and sealed exactly once
  // into the record buffer — ≤ 2 copies between producer buffer and
  // channel, with zero bytes taking a slow path.
  const std::uint64_t payload = wire.payload_bytes.load() - payload0;
  const std::uint64_t gather = wire.gather_bytes.load() - gather0;
  const std::uint64_t sealed = wire.sealed_bytes.load() - sealed0;
  ASSERT_GT(payload, 2 * content.size());  // body travelled both ways
  EXPECT_EQ(gather, payload);
  EXPECT_EQ(sealed, payload);
  EXPECT_LE(gather + sealed, 2 * payload);
}

TEST(WirePath, TelemetryExportsWireGauges) {
  Rig rig;
  auto& alice = rig.connect("alice");
  ASSERT_TRUE(alice.put_file("/f", rig.rng().bytes(10'000)).ok());
  const auto snap = rig.enclave().telemetry_snapshot();
  EXPECT_GT(snap.gauges.at("net.wire.messages"), 0u);
  EXPECT_GT(snap.gauges.at("net.wire.records"), 0u);
  EXPECT_GT(snap.gauges.at("net.wire.payload_bytes"), 0u);
  // The copy invariant is visible to operators, not just tests.
  EXPECT_EQ(snap.gauges.at("net.wire.gather_bytes"),
            snap.gauges.at("net.wire.payload_bytes"));
  EXPECT_EQ(snap.gauges.at("net.wire.sealed_bytes"),
            snap.gauges.at("net.wire.payload_bytes"));
}

// ------------------------------------------------- streaming round trips ---

TEST(WirePath, RoundTripsAcrossChunkBoundaries) {
  Rig rig;
  auto& alice = rig.connect("alice");
  for (const std::size_t size :
       {std::size_t{0}, std::size_t{1}, proto::kStreamChunk - 1,
        proto::kStreamChunk, proto::kStreamChunk + 1,
        2 * proto::kStreamChunk + 77}) {
    const Bytes content = rig.rng().bytes(size);
    ASSERT_TRUE(alice.put_file("/rt.bin", content).ok()) << "size " << size;
    const auto [response, body] = alice.get_file("/rt.bin");
    ASSERT_TRUE(response.ok()) << "size " << size;
    EXPECT_EQ(body, content) << "size " << size;
  }
}

// ---------------------------------------------------------- error trailer ---

TEST(WirePath, MidStreamTamperAbortsDownloadWithTypedError) {
  Rig rig;
  auto& alice = rig.connect("alice");

  std::set<std::string> before;
  for (const auto& name : rig.content_store().list()) before.insert(name);
  ASSERT_TRUE(alice.put_file("/victim.bin", rig.rng().bytes(5 * 4096)).ok());

  // The new blobs of /victim.bin: tamper with a content chunk (sealed
  // chunks are >= 4 KiB; sidecars and directory records are smaller).
  bool tampered = false;
  for (const auto& name : rig.content_store().list()) {
    if (before.count(name)) continue;
    const auto blob = rig.content_store().get(name);
    if (blob && blob->size() >= 4096) {
      ASSERT_TRUE(rig.content_store().tamper_flip_bit(name, 1000));
      tampered = true;
      break;
    }
  }
  ASSERT_TRUE(tampered) << "no chunk blob found to tamper with";

  // The header (from the metadata sidecar) still reads fine, so the
  // failure strikes mid-stream — after DATA frames may be on the wire.
  // The client must get a typed abort, not a hang or a silent mismatch.
  try {
    alice.get_file("/victim.bin");
    FAIL() << "tampered download must not succeed";
  } catch (const client::DownloadAbortedError& e) {
    EXPECT_EQ(e.response().status, proto::Status::kError);
    EXPECT_FALSE(e.response().message.empty());
  }

  // The connection survives the aborted stream: the protocol stayed in
  // sync (trailer instead of a dangling DATA sequence).
  ASSERT_TRUE(alice.put_file("/next.bin", to_bytes("still works")).ok());
  EXPECT_EQ(alice.get_file("/next.bin").second, to_bytes("still works"));
}

// ----------------------------------------------- hostile-server hardening ---

// A server the test scripts directly: real handshake + record layer, but
// the responses are whatever frames the test enqueues. Lets us feed the
// client corrupt headers, overruns, and trailers a real enclave never
// produces.
class FakeServer {
 public:
  FakeServer()
      : server_cert_(ca_.issue_server_certificate(
            tls::make_csr("server", server_pair_))) {}

  client::UserClient connect_client(const std::string& user) {
    client::UserClient client(rng_, ca_.public_key(),
                              client::enroll_user(rng_, ca_, user));
    client.connect(wire_.a(), [this] { pump(); });
    return client;
  }

  /// Frames (already proto::frame()d) to send after draining the next
  /// client message.
  void script(std::vector<Bytes> frames) { script_ = std::move(frames); }

 private:
  void pump() {
    while (wire_.b().pending()) {
      if (channel_) {
        channel_->recv_message();  // drain the client's request
        continue;
      }
      const Bytes message = wire_.b().recv();
      if (!handshake_) {
        handshake_ = std::make_unique<tls::ServerHandshake>(
            rng_, ca_.public_key(), server_cert_, server_pair_.seed);
        wire_.b().send(handshake_->on_client_hello(message));
      } else {
        wire_.b().send(handshake_->on_client_finished(message));
        channel_ = std::make_unique<tls::SecureChannel>(
            wire_.b(), handshake_->result().keys, /*is_client=*/false);
      }
    }
    if (channel_) {
      for (const Bytes& frame : script_) channel_->send_message(frame);
      script_.clear();
    }
  }

  TestRng rng_{0xfa6e};
  tls::CertificateAuthority ca_{rng_};
  crypto::Ed25519KeyPair server_pair_ = crypto::ed25519_generate(rng_);
  tls::Certificate server_cert_;
  net::DuplexChannel wire_;
  std::unique_ptr<tls::ServerHandshake> handshake_;
  std::unique_ptr<tls::SecureChannel> channel_;
  std::vector<Bytes> script_;
};

Bytes ok_header(std::uint64_t body_size) {
  proto::Response header;
  header.body_size = body_size;
  return proto::frame(proto::FrameType::kResponse, header.serialize());
}

TEST(ClientHardening, HugeAnnouncedBodySizeDoesNotPreallocate) {
  FakeServer server;
  auto client = server.connect_client("alice");
  // A corrupt header demanding an exabyte: the client must not attempt
  // the reservation. With 10 bytes delivered and a clean END, the size
  // mismatch surfaces as a protocol error — not bad_alloc.
  server.script({ok_header(std::uint64_t{1} << 60),
                 proto::frame(proto::FrameType::kData, Bytes(10, 7)),
                 proto::frame(proto::FrameType::kEnd)});
  EXPECT_THROW(client.get_file("/x"), ProtocolError);
}

TEST(ClientHardening, MidStreamOverrunRejectedImmediately) {
  FakeServer server;
  auto client = server.connect_client("alice");
  // Announce 10 bytes, deliver 4096: rejected at the first overrunning
  // DATA frame instead of buffering an unbounded body until END.
  server.script({ok_header(10),
                 proto::frame(proto::FrameType::kData, Bytes(4096, 7))});
  EXPECT_THROW(client.get_file("/x"), ProtocolError);
}

TEST(ClientHardening, EmptyDataFramesAreHarmless) {
  FakeServer server;
  auto client = server.connect_client("alice");
  server.script({ok_header(5), proto::frame(proto::FrameType::kData),
                 proto::frame(proto::FrameType::kData, to_bytes("hello")),
                 proto::frame(proto::FrameType::kData),
                 proto::frame(proto::FrameType::kEnd)});
  const auto [response, body] = client.get_file("/x");
  EXPECT_TRUE(response.ok());
  EXPECT_EQ(body, to_bytes("hello"));
}

TEST(ClientHardening, ErrorTrailerRaisesTypedError) {
  FakeServer server;
  auto client = server.connect_client("alice");
  proto::Response verdict;
  verdict.status = proto::Status::kError;
  verdict.message = "integrity: tampered mid-stream";
  server.script({ok_header(100),
                 proto::frame(proto::FrameType::kData, Bytes(50, 1)),
                 proto::frame(proto::FrameType::kEnd, verdict.serialize())});
  try {
    client.get_file("/x");
    FAIL() << "trailer must abort the download";
  } catch (const client::DownloadAbortedError& e) {
    EXPECT_EQ(e.response().status, proto::Status::kError);
    EXPECT_EQ(e.response().message, "integrity: tampered mid-stream");
  }
}

TEST(ClientHardening, GarbageTrailerPayloadRejected) {
  FakeServer server;
  auto client = server.connect_client("alice");
  // A non-empty END payload that does not parse as a Response must not
  // slip through as a successful (truncated) download.
  server.script({ok_header(100),
                 proto::frame(proto::FrameType::kEnd, to_bytes("\xff"))});
  EXPECT_THROW(client.get_file("/x"), Error);
}

TEST(ClientHardening, UnexpectedFrameTypeRejected) {
  FakeServer server;
  auto client = server.connect_client("alice");
  server.script({ok_header(100), proto::frame(proto::FrameType::kClose)});
  EXPECT_THROW(client.get_file("/x"), ProtocolError);
}

}  // namespace
}  // namespace seg
